//! The one occupancy kernel: the single discrete-event loop behind both
//! the flat traffic engine ([`crate::sessions::TrafficEngine`]) and the
//! sharded cluster's component simulation ([`crate::cluster`]).
//!
//! Before unification the two engines ran hand-rolled copies of this loop
//! whose same-instant tie-breaks had drifted apart (eager vs lazy arrival
//! injection, fused vs re-queued receive claims, per-claim vs armed
//! wake-ups), so the same request vector could produce different reports
//! depending on which engine served it. This module is now the only event
//! loop in the crate; both engines feed it [`SessionRuntime`]s and get the
//! identical occupancy semantics.
//!
//! # The tie-break rule
//!
//! Events are executed in ascending `(time, band, seq)` order:
//!
//! 1. **Band 0 — session openings.** A session's first claim (its source's
//!    first send) carries band 0 and its injection rank, so at any instant
//!    all newly arriving sessions open *before* every already-scheduled
//!    event of that instant, in request order. Arrivals are still injected
//!    lazily — a session enters the heap only once the clock reaches it —
//!    but the band makes lazy injection observationally identical to
//!    pre-loading every arrival up front.
//! 2. **Band 1 — scheduled events.** Everything else of the planned
//!    schedule (follow-up sends, message arrivals, receive claims, node
//!    wake-ups) executes in scheduling order: whichever event was pushed
//!    first wins a same-instant tie.
//! 3. **Band 2 — repair traffic.** NACKs and repair retransmissions (the
//!    fault model's recovery path, see below) carry band 2, so at any
//!    instant repair traffic yields the node to every same-instant claim
//!    of the original schedule. Loss can therefore only *add* events after
//!    the point of the first loss — a lossless [`LossProfile`] is
//!    event-for-event identical to running with no fault injection at all.
//! 4. **Deferred claims yield.** A message's delivery is recorded the
//!    instant it arrives, but its receive overhead re-enters the queue as a
//!    fresh band-1 event, so it loses same-instant ties against claims
//!    scheduled before the message landed. Likewise a parked claim woken by
//!    a node release re-enters with a fresh sequence number (in its own
//!    event's band, so a parked repair send keeps yielding to schedule
//!    traffic).
//! 5. **FIFO per node.** Claims finding a node busy park in that node's
//!    FIFO queue; every completed activity schedules a wake at its end
//!    which re-injects exactly one parked waiter (stale wakes — the node
//!    was re-claimed at the same instant — are dropped, because the
//!    claimant scheduled its own). Event count thus stays linear in the
//!    activity count even on a saturated node.
//!
//! The rule is pinned by an executable specification: the pre-unification
//! flat loop survives as a `#[cfg(test)]` reference in `sessions.rs`, and a
//! property test replays random contended traffic through both.
//!
//! # Loss and repair
//!
//! With a [`FaultCtx`] the kernel injects message loss and runs NACK-driven
//! local repair:
//!
//! * **Loss.** Every delivery — original send or repair — draws from the
//!   [`LossProfile`], keyed by `(session, sender, receiver, attempt)` and
//!   never by event-processing order (the determinism contract; see
//!   [`crate::faults`]). A lost delivery still consumes the sender's full
//!   one-port send occupancy; only the receiver side never happens.
//! * **NACK.** The receiver detects the gap one network latency after the
//!   lost transmission and issues a NACK to its designated repairer
//!   ([`SessionRuntime`]'s repairer table, assigned by a
//!   [`hnow_core::RepairPlacement`] policy at admission; absent tables
//!   default to source-only). NACKs are control traffic and consume no
//!   node occupancy; the *retransmission* claims the repairer's one-port
//!   send occupancy exactly like a scheduled send, in band 2.
//! * **Backoff and bounded retries.** Retransmission `a` waits the
//!   profile's keyed exponential backoff; after `max_retries` lost
//!   retransmissions — or once the profile's optional `repair_deadline`
//!   elapses after the first miss, counting time spent queued on a busy
//!   repairer — the receiver **fails** and the session completes
//!   *partially* (graceful degradation): `pending` is discharged, the
//!   failure is counted, and the receiver's would-be children are told to
//!   request repair from their own repairers (escalating past failed ones,
//!   terminating at the source, which holds the payload from time zero).
//! * **Repairer readiness.** A repairer that has not yet completed its own
//!   reception parks incoming repair requests and replays them the moment
//!   it is reached (or hands them up the escalation chain if it fails),
//!   so repair can never deadlock on an unserved repairer.
//!
//! # Chunk trains
//!
//! A streaming session ([`SessionRuntime::chunks`] > 1) moves its payload
//! as a train of chunks over the *same* planned tree: every event carries
//! a chunk index, occupancy claims of different chunks contend for the one
//! port under the ordinary `(time, band, seq)` rule, and the fault model
//! keys each chunk's losses independently (chunk 0 keys exactly like the
//! atomic session). Two release disciplines exist:
//!
//! * **Pipelined** (the streaming default): the source opens chunk `c + 1`
//!   the moment its last send of chunk `c` finishes and the chunk's
//!   release time (`arrival + c·interval`) has passed. Consecutive chunks
//!   overlap down the tree like a software pipeline.
//! * **Sequential** (the one-shot re-send baseline): chunk `c + 1` opens
//!   only once chunk `c` has fully settled — received or given up on — at
//!   every member, and its release is due.
//!
//! Repair state is kept per `(chunk, node)`, so a failed or late chunk
//! degrades only itself; later chunks of the same receiver are unaffected.
//! A `chunks == 1` session takes none of these branches and is
//! event-for-event identical to the atomic path.

use crate::faults::LossProfile;
use crate::sessions::SessionRuntime;
use hnow_model::{NetParams, NodeSpec, Time};
use hnow_telemetry::{Recorder, TraceEvent, TraceEventKind as Kind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A discrete event of the occupancy simulation. "Claim" events ([`Send`],
/// [`Recv`], [`RepairSend`]) ask for node time and park in the node's FIFO
/// wait queue while it is busy.
///
/// [`Send`]: KernelEvent::Send
/// [`Recv`]: KernelEvent::Recv
/// [`RepairSend`]: KernelEvent::RepairSend
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum KernelEvent {
    /// The session's tree node `local` wants to start its `child`-th send
    /// of chunk `chunk`.
    Send {
        local: usize,
        child: usize,
        chunk: u32,
    },
    /// Chunk `chunk` reaches tree node `local` (records delivery, then
    /// re-queues the receive claim per tie-break rule 4).
    Arrive { local: usize, chunk: u32 },
    /// Tree node `local` wants to start its receiving overhead for chunk
    /// `chunk`.
    Recv { local: usize, chunk: u32 },
    /// The node finished an activity; wake its next parked waiter.
    Free { node: usize },
    /// Tree node `local` missed chunk `chunk` and requests retransmission
    /// `attempt` from its repairer (band 2; control traffic, no occupancy).
    Nack {
        local: usize,
        attempt: u32,
        chunk: u32,
    },
    /// `local`'s repairer wants to start retransmission `attempt` of chunk
    /// `chunk` (band 2; claims the repairer's send occupancy).
    RepairSend {
        local: usize,
        attempt: u32,
        chunk: u32,
    },
}

impl KernelEvent {
    /// Tie-break band: repair traffic yields to the planned schedule.
    fn band(&self) -> u8 {
        match self {
            KernelEvent::Nack { .. } | KernelEvent::RepairSend { .. } => 2,
            _ => 1,
        }
    }

    /// Chunk index the event belongs to (0 for node wakes), for trace
    /// emission.
    fn chunk(&self) -> u32 {
        match self {
            KernelEvent::Send { chunk, .. }
            | KernelEvent::Arrive { chunk, .. }
            | KernelEvent::Recv { chunk, .. }
            | KernelEvent::Nack { chunk, .. }
            | KernelEvent::RepairSend { chunk, .. } => *chunk,
            KernelEvent::Free { .. } => 0,
        }
    }
}

/// Heap entry: `(time, band, seq, session slot, event)`. Only the first
/// three fields ever decide an ordering — `seq` is unique within a band —
/// but the trailing fields must still be `Ord` for the tuple.
type HeapItem = Reverse<(Time, u8, u64, usize, KernelEvent)>;

/// Fault-injection context of one kernel run: the loss profile plus the
/// receiver-class table for per-class rate overrides (indexed by the same
/// dense node id space as `specs`).
pub(crate) struct FaultCtx<'a> {
    pub(crate) profile: &'a LossProfile,
    pub(crate) class_of: &'a [usize],
}

/// The fault-model session key of one chunk. Chunk 0 keys exactly like the
/// atomic session — so a `chunks == 1` run draws bit-identical losses to
/// the unchunked path — while every later chunk mixes its index in, giving
/// each chunk of a train an independent (but still seeded and
/// order-independent) loss pattern.
fn fault_id(session_id: u64, chunk: u32) -> u64 {
    if chunk == 0 {
        session_id
    } else {
        session_id ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(chunk))
    }
}

/// Per-receiver repair progress.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RepairStatus {
    /// Reception not yet completed (the initial state of every non-source
    /// node).
    Pending,
    /// Reception completed; the node can serve as a repairer.
    Reached,
    /// Retries exhausted; the node is given up on.
    Failed,
}

/// Per-session repair bookkeeping, allocated only for faulted runs. Every
/// vector is indexed per `(chunk, node)` via [`Self::idx`] — each chunk of
/// a streaming session runs its own independent repair state over the same
/// tree, so a late repair degrades only that chunk.
struct RepairState {
    /// Tree size: the stride of the `(chunk, node)` index.
    nodes: usize,
    status: Vec<RepairStatus>,
    /// When each `(chunk, node)` first learned it missed a delivery
    /// (`Time::ZERO` + `missed == false` means never).
    first_missed: Vec<Time>,
    missed: Vec<bool>,
    /// Repair requests parked on a not-yet-reached repairer, keyed by the
    /// repairer's `(chunk, tree-local)` index.
    parked: Vec<Vec<(usize, u32)>>,
}

impl RepairState {
    fn new(nodes: usize, chunks: u32) -> Self {
        let slots = nodes * chunks as usize;
        let mut status = vec![RepairStatus::Pending; slots];
        for chunk in 0..chunks as usize {
            // The source holds every chunk from its release.
            status[chunk * nodes] = RepairStatus::Reached;
        }
        RepairState {
            nodes,
            status,
            first_missed: vec![Time::ZERO; slots],
            missed: vec![false; slots],
            parked: vec![Vec::new(); slots],
        }
    }

    /// Dense `(chunk, node)` index.
    fn idx(&self, chunk: u32, local: usize) -> usize {
        chunk as usize * self.nodes + local
    }
}

/// Per-node state carried across epoch-synchronous kernel runs: the busy
/// time accumulated by this run (the utilization numerator) and each
/// node's busy horizon at the end of it (the next epoch's carry-in).
pub(crate) struct CarryOut {
    pub(crate) busy_time: Vec<u64>,
    pub(crate) busy_until: Vec<Time>,
}

/// Runs every session to completion against shared per-node busy state and
/// returns the accumulated busy time per node (the utilization numerator).
///
/// `specs` defines the node id space: `node_map` entries in `sessions`
/// index into it. The flat engine passes the whole pool; the sharded
/// cluster passes one contact component's nodes compacted to a dense range.
/// `sessions` must be in request order — the slice position is the
/// tie-break identity of rule 1, so two callers handing the kernel the same
/// sessions in the same order get byte-identical outcomes regardless of how
/// the surrounding work was partitioned or threaded. `faults` switches on
/// loss injection and NACK-driven repair (see the module docs).
pub(crate) fn simulate(
    specs: &[NodeSpec],
    net: NetParams,
    sessions: &mut [SessionRuntime],
    faults: Option<&FaultCtx<'_>>,
    trace: Option<&Recorder<'_>>,
) -> Vec<u64> {
    let idle = vec![Time::ZERO; specs.len()];
    simulate_from(specs, net, sessions, &idle, faults, trace).busy_time
}

/// [`simulate`] with carried-in busy state: `busy0[node]` is the node's
/// busy horizon at the start of this run (the control loop's
/// epoch-synchronous carry). Each carried-busy node gets one initial
/// band-1 `Free` wake at its horizon — before any injection, in ascending
/// node order — so claims parking behind carried work are woken exactly
/// like claims parking behind this run's own activities. An all-`ZERO`
/// carry reproduces [`simulate`] event for event.
pub(crate) fn simulate_from(
    specs: &[NodeSpec],
    net: NetParams,
    sessions: &mut [SessionRuntime],
    busy0: &[Time],
    faults: Option<&FaultCtx<'_>>,
    trace: Option<&Recorder<'_>>,
) -> CarryOut {
    run(specs, net, sessions, busy0, faults, None, trace)
}

/// [`simulate`] with a full activity log: every occupancy interval the run
/// charged, as `(node, start, end)` in charge order. Test instrumentation
/// for the one-port property (`validate::check_one_port`).
#[cfg(test)]
pub(crate) fn simulate_logged(
    specs: &[NodeSpec],
    net: NetParams,
    sessions: &mut [SessionRuntime],
    faults: Option<&FaultCtx<'_>>,
) -> (Vec<u64>, Vec<(usize, Time, Time)>) {
    let idle = vec![Time::ZERO; specs.len()];
    let mut log = Vec::new();
    let carry = run(specs, net, sessions, &idle, faults, Some(&mut log), None);
    (carry.busy_time, log)
}

/// The event loop. `log`, when present, records every charged occupancy
/// interval; `trace`, when present, receives a structured [`TraceEvent`]
/// at every instrumented instant (session openings, send start/finish,
/// receives, park/wake pairs, NACKs, repair transmissions, chunk
/// releases, abandonments). Tracing is observation only — no emission
/// site reads the recorder back — so an attached recorder cannot perturb
/// the event order, and a `None` recorder costs one predictable branch
/// per site.
fn run(
    specs: &[NodeSpec],
    net: NetParams,
    sessions: &mut [SessionRuntime],
    busy0: &[Time],
    faults: Option<&FaultCtx<'_>>,
    mut log: Option<&mut Vec<(usize, Time, Time)>>,
    trace: Option<&Recorder<'_>>,
) -> CarryOut {
    let n = specs.len();
    debug_assert_eq!(busy0.len(), n);
    // A lossless profile draws no losses, so skipping the fault path
    // entirely makes "rate 0 equals no injection" structural rather than
    // statistical.
    let faults = faults.filter(|ctx| !ctx.profile.is_lossless());
    let mut busy_until = busy0.to_vec();
    let mut busy_time = vec![0u64; n];
    let mut waiting: Vec<VecDeque<(usize, KernelEvent)>> = vec![VecDeque::new(); n];
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut repair: Vec<RepairState> = match faults {
        Some(_) => sessions
            .iter()
            .map(|session| RepairState::new(session.node_map.len(), session.chunks))
            .collect(),
        None => Vec::new(),
    };

    // Lazy injection order: by arrival, ties by slot (= request order).
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    order.sort_by_key(|&slot| (sessions[slot].arrival, slot));
    let mut next_inject = 0usize;

    // Session ids by slot, so wake emissions can name the woken session
    // while another session holds the `&mut sessions` borrow. Only traced
    // runs pay for the table.
    let ids: Vec<u64> = match trace {
        Some(_) => sessions.iter().map(|session| session.id).collect(),
        None => Vec::new(),
    };

    macro_rules! push {
        ($time:expr, $slot:expr, $event:expr) => {{
            let event = $event;
            heap.push(Reverse(($time, event.band(), seq, $slot, event)));
            seq += 1;
        }};
    }

    macro_rules! trace_ev {
        ($ev:expr) => {
            if let Some(recorder) = trace {
                recorder.emit($ev);
            }
        };
    }

    // Gives receiver `$local` of the session in `$slot` up on chunk
    // `$chunk` at time `$t`: graceful degradation shared by retry
    // exhaustion and repair-deadline expiry. The would-be children are
    // pointed at their own repairers and requests parked on the failed
    // node escalate. Streaming bookkeeping mirrors the receive path, so a
    // lost cause still advances a sequential chunk train.
    macro_rules! give_up {
        ($state:expr, $session:expr, $slot:expr, $local:expr, $chunk:expr, $t:expr) => {{
            let at = $state.idx($chunk, $local);
            $state.status[at] = RepairStatus::Failed;
            $session.pending -= 1;
            $session.failed_members += 1;
            trace_ev!(TraceEvent::new($t.raw(), Kind::Abandon, $session.id)
                .node($session.node_map[$local])
                .band(2)
                .chunk($chunk));
            for child in 0..$session.children[$local].len() {
                let c = $session.children[$local][child];
                push!(
                    $t + net.latency(),
                    $slot,
                    KernelEvent::Nack {
                        local: c,
                        attempt: 1,
                        chunk: $chunk,
                    }
                );
            }
            for (target, attempt) in std::mem::take(&mut $state.parked[at]) {
                push!(
                    $t,
                    $slot,
                    KernelEvent::RepairSend {
                        local: target,
                        attempt,
                        chunk: $chunk,
                    }
                );
            }
            if $session.chunks > 1 {
                let c = $chunk as usize;
                $session.chunk_pending[c] -= 1;
                if $session.chunk_pending[c] == 0
                    && !$session.pipelined
                    && $chunk + 1 < $session.chunks
                {
                    let release =
                        $session.arrival + $session.chunk_interval * (u64::from($chunk) + 1);
                    trace_ev!(TraceEvent::new(
                        $t.max(release).raw(),
                        Kind::ChunkRelease,
                        $session.id
                    )
                    .node($session.node_map[0])
                    .band(1)
                    .chunk($chunk + 1)
                    .seq(seq));
                    push!(
                        $t.max(release),
                        $slot,
                        KernelEvent::Send {
                            local: 0,
                            child: 0,
                            chunk: $chunk + 1,
                        }
                    );
                }
            }
        }};
    }

    // Arm one wake per carried-busy node (the slot field is meaningless
    // for Free events).
    for (node, &until) in busy_until.iter().enumerate() {
        if until > Time::ZERO {
            push!(until, 0, KernelEvent::Free { node });
        }
    }

    loop {
        // Admit sessions whose arrival is due. Popped times are
        // nondecreasing and `order` ascends by arrival, so every arrival
        // ≤ the current front is injected before anything at that instant
        // executes; band 0 then lets it open first (rule 1).
        while next_inject < order.len() {
            let slot = order[next_inject];
            let arrival = sessions[slot].arrival;
            let due = match heap.peek() {
                Some(Reverse((t, ..))) => arrival <= *t,
                None => true,
            };
            if !due {
                break;
            }
            if !sessions[slot].children[0].is_empty() {
                trace_ev!(
                    TraceEvent::new(arrival.raw(), Kind::SessionOpen, sessions[slot].id)
                        .node(sessions[slot].node_map[0])
                        .seq(next_inject as u64)
                );
                heap.push(Reverse((
                    arrival,
                    0u8,
                    next_inject as u64,
                    slot,
                    KernelEvent::Send {
                        local: 0,
                        child: 0,
                        chunk: 0,
                    },
                )));
            }
            next_inject += 1;
        }
        let Some(Reverse((t, _, eseq, slot, event))) = heap.pop() else {
            break;
        };

        if let KernelEvent::Free { node } = event {
            // Obsolete when a same-instant event already re-claimed the
            // node; the claimant scheduled its own wake (rule 5).
            if busy_until[node] <= t {
                if let Some((waiter, parked)) = waiting[node].pop_front() {
                    trace_ev!(TraceEvent::new(t.raw(), Kind::Wake, ids[waiter])
                        .node(node)
                        .band(parked.band())
                        .chunk(parked.chunk())
                        .seq(seq));
                    push!(t, waiter, parked);
                }
            }
            continue;
        }

        let session = &mut sessions[slot];
        // A popped claim always belongs to a live session: a session can
        // only abandon at its first-ever claim (`started` is still `None`),
        // and until that claim executes it is the session's *only* event —
        // nothing else of the session is in the heap or parked, and the
        // abandon path schedules nothing. So no event of an abandoned
        // session can surface here. Checked rather than silently skipped:
        // were this reachable, a popped claim on a free node would have to
        // pass the node to the next parked waiter or risk starvation.
        debug_assert!(
            !session.abandoned,
            "event popped for abandoned session in slot {slot}"
        );
        if session.abandoned {
            continue;
        }
        match event {
            KernelEvent::Send {
                local,
                child,
                chunk,
            } => {
                let node = session.node_map[local];
                if busy_until[node] > t {
                    trace_ev!(TraceEvent::new(t.raw(), Kind::Park, session.id)
                        .node(node)
                        .band(event.band())
                        .chunk(chunk)
                        .seq(eseq));
                    waiting[node].push_back((slot, event));
                    continue;
                }
                if session.started.is_none() {
                    // First activity of the session: the churn gate.
                    if session.deadline.is_some_and(|d| t > d) {
                        session.abandoned = true;
                        trace_ev!(TraceEvent::new(t.raw(), Kind::Abandon, session.id)
                            .node(node)
                            .band(1)
                            .chunk(chunk));
                        // The session declined a free node; pass it on so
                        // parked waiters never starve (no wake is pending
                        // for this idle node).
                        if let Some((waiter, parked)) = waiting[node].pop_front() {
                            trace_ev!(TraceEvent::new(t.raw(), Kind::Wake, ids[waiter])
                                .node(node)
                                .band(parked.band())
                                .chunk(parked.chunk())
                                .seq(seq));
                            push!(t, waiter, parked);
                        }
                        continue;
                    }
                    session.started = Some(t);
                }
                let dur = specs[node].send();
                let end = t + dur;
                busy_until[node] = end;
                busy_time[node] += dur.raw();
                if let Some(log) = log.as_deref_mut() {
                    log.push((node, t, end));
                }
                trace_ev!(TraceEvent::new(t.raw(), Kind::SendStart, session.id)
                    .node(node)
                    .band(1)
                    .chunk(chunk)
                    .seq(eseq)
                    .dur(dur.raw()));
                trace_ev!(TraceEvent::new(end.raw(), Kind::SendFinish, session.id)
                    .node(node)
                    .band(1)
                    .chunk(chunk)
                    .seq(eseq));
                let target = session.children[local][child];
                // A lost delivery consumed the sender's occupancy all the
                // same; the receiver detects the gap one latency later
                // (when the delivery would have landed) and NACKs.
                let lost = faults.is_some_and(|ctx| {
                    ctx.profile.lost(
                        fault_id(session.id, chunk),
                        local,
                        target,
                        0,
                        t,
                        ctx.class_of[session.node_map[target]],
                    )
                });
                if lost {
                    push!(
                        end + net.latency(),
                        slot,
                        KernelEvent::Nack {
                            local: target,
                            attempt: 1,
                            chunk,
                        }
                    );
                } else {
                    push!(
                        end + net.latency(),
                        slot,
                        KernelEvent::Arrive {
                            local: target,
                            chunk,
                        }
                    );
                }
                if child + 1 < session.children[local].len() {
                    push!(
                        end,
                        slot,
                        KernelEvent::Send {
                            local,
                            child: child + 1,
                            chunk,
                        }
                    );
                } else if local == 0 && session.pipelined && chunk + 1 < session.chunks {
                    // Pipelined train: the source opens the next chunk the
                    // moment its port is free and the chunk is released —
                    // relays downstream are still draining this one.
                    let release = session.arrival + session.chunk_interval * (u64::from(chunk) + 1);
                    trace_ev!(TraceEvent::new(
                        end.max(release).raw(),
                        Kind::ChunkRelease,
                        session.id
                    )
                    .node(node)
                    .band(1)
                    .chunk(chunk + 1)
                    .seq(seq));
                    push!(
                        end.max(release),
                        slot,
                        KernelEvent::Send {
                            local: 0,
                            child: 0,
                            chunk: chunk + 1,
                        }
                    );
                }
                push!(end, slot, KernelEvent::Free { node });
            }
            KernelEvent::Arrive { local, chunk } => {
                // Delivery is the message hitting the node, busy or not;
                // the receive overhead queues for node time separately
                // (rule 4).
                session.delivered_at = session.delivered_at.max(t);
                push!(t, slot, KernelEvent::Recv { local, chunk });
            }
            KernelEvent::Recv { local, chunk } => {
                let node = session.node_map[local];
                if busy_until[node] > t {
                    trace_ev!(TraceEvent::new(t.raw(), Kind::Park, session.id)
                        .node(node)
                        .band(event.band())
                        .chunk(chunk)
                        .seq(eseq));
                    waiting[node].push_back((slot, event));
                    continue;
                }
                let dur = specs[node].recv();
                let end = t + dur;
                busy_until[node] = end;
                busy_time[node] += dur.raw();
                if let Some(log) = log.as_deref_mut() {
                    log.push((node, t, end));
                }
                trace_ev!(TraceEvent::new(t.raw(), Kind::Receive, session.id)
                    .node(node)
                    .band(1)
                    .chunk(chunk)
                    .seq(eseq)
                    .dur(dur.raw()));
                session.pending -= 1;
                session.completed_at = session.completed_at.max(end);
                if !repair.is_empty() {
                    let state = &mut repair[slot];
                    let at = state.idx(chunk, local);
                    state.status[at] = RepairStatus::Reached;
                    if state.missed[at] {
                        session
                            .repair_delays
                            .push(end.saturating_sub(state.first_missed[at]).raw());
                    }
                    // The node holds the chunk now: replay every repair
                    // request that was waiting for it.
                    for (target, attempt) in std::mem::take(&mut state.parked[at]) {
                        push!(
                            end,
                            slot,
                            KernelEvent::RepairSend {
                                local: target,
                                attempt,
                                chunk,
                            }
                        );
                    }
                }
                if session.chunks > 1 {
                    let c = chunk as usize;
                    session.chunk_pending[c] -= 1;
                    session.chunk_completed_at[c] = session.chunk_completed_at[c].max(end);
                    if session.chunk_pending[c] == 0
                        && !session.pipelined
                        && chunk + 1 < session.chunks
                    {
                        // Sequential train (the one-shot re-send baseline):
                        // the next chunk only opens once this one has fully
                        // settled at every member and its release is due.
                        let release =
                            session.arrival + session.chunk_interval * (u64::from(chunk) + 1);
                        trace_ev!(TraceEvent::new(
                            end.max(release).raw(),
                            Kind::ChunkRelease,
                            session.id
                        )
                        .node(session.node_map[0])
                        .band(1)
                        .chunk(chunk + 1)
                        .seq(seq));
                        push!(
                            end.max(release),
                            slot,
                            KernelEvent::Send {
                                local: 0,
                                child: 0,
                                chunk: chunk + 1,
                            }
                        );
                    }
                }
                if !session.children[local].is_empty() {
                    push!(
                        end,
                        slot,
                        KernelEvent::Send {
                            local,
                            child: 0,
                            chunk,
                        }
                    );
                }
                push!(end, slot, KernelEvent::Free { node });
            }
            KernelEvent::Nack {
                local,
                attempt,
                chunk,
            } => {
                let ctx = faults.expect("repair events only exist in faulted runs");
                let state = &mut repair[slot];
                let at = state.idx(chunk, local);
                if state.status[at] != RepairStatus::Pending {
                    continue;
                }
                if !state.missed[at] {
                    state.missed[at] = true;
                    state.first_missed[at] = t;
                }
                let expired = ctx
                    .profile
                    .repair_deadline
                    .is_some_and(|d| t.raw() > state.first_missed[at].raw().saturating_add(d));
                if attempt > ctx.profile.max_retries || expired {
                    // Retries exhausted or recovery-liveness bound blown:
                    // the session completes partially.
                    give_up!(state, session, slot, local, chunk, t);
                    continue;
                }
                session.nacks += 1;
                trace_ev!(TraceEvent::new(t.raw(), Kind::Nack, session.id)
                    .node(session.node_map[local])
                    .band(2)
                    .chunk(chunk)
                    .seq(eseq));
                let delay = ctx
                    .profile
                    .retry_delay(fault_id(session.id, chunk), local, attempt);
                push!(
                    t + Time::new(delay),
                    slot,
                    KernelEvent::RepairSend {
                        local,
                        attempt,
                        chunk,
                    }
                );
            }
            KernelEvent::RepairSend {
                local,
                attempt,
                chunk,
            } => {
                let ctx = faults.expect("repair events only exist in faulted runs");
                let state = &mut repair[slot];
                let at = state.idx(chunk, local);
                if state.status[at] != RepairStatus::Pending {
                    continue;
                }
                // Resolve the repairer, escalating past failed ones; every
                // placement walks strictly upstream and the source is
                // always `Reached` (it holds every chunk from release), so
                // this terminates.
                let repairer_of = |v: usize| session.repairer.as_ref().map_or(0, |table| table[v]);
                let mut rp = repairer_of(local);
                while state.status[state.idx(chunk, rp)] == RepairStatus::Failed {
                    rp = repairer_of(rp);
                }
                if state.status[state.idx(chunk, rp)] == RepairStatus::Pending {
                    // The repairer has not been served this chunk yet
                    // itself; park the request — its reception (or
                    // failure) replays it.
                    let park = state.idx(chunk, rp);
                    state.parked[park].push((local, attempt));
                    continue;
                }
                let node = session.node_map[rp];
                if busy_until[node] > t {
                    trace_ev!(TraceEvent::new(t.raw(), Kind::Park, session.id)
                        .node(node)
                        .band(event.band())
                        .chunk(chunk)
                        .seq(eseq));
                    waiting[node].push_back((slot, event));
                    continue;
                }
                // The deadline is checked at the moment the claim holds a
                // free port, so the queueing delay accrued in a congested
                // repairer's FIFO counts against the recovery bound: a
                // retransmission that waited it out is abandoned, not sent.
                // The declined node is passed on like the churn gate does,
                // so parked waiters never starve.
                if ctx
                    .profile
                    .repair_deadline
                    .is_some_and(|d| t.raw() > state.first_missed[at].raw().saturating_add(d))
                {
                    give_up!(state, session, slot, local, chunk, t);
                    if let Some((waiter, parked)) = waiting[node].pop_front() {
                        trace_ev!(TraceEvent::new(t.raw(), Kind::Wake, ids[waiter])
                            .node(node)
                            .band(parked.band())
                            .chunk(parked.chunk())
                            .seq(seq));
                        push!(t, waiter, parked);
                    }
                    continue;
                }
                let dur = specs[node].send();
                let end = t + dur;
                busy_until[node] = end;
                busy_time[node] += dur.raw();
                if let Some(log) = log.as_deref_mut() {
                    log.push((node, t, end));
                }
                trace_ev!(TraceEvent::new(t.raw(), Kind::Repair, session.id)
                    .node(node)
                    .band(2)
                    .chunk(chunk)
                    .seq(eseq)
                    .dur(dur.raw()));
                session.repair_sends += 1;
                let lost = ctx.profile.lost(
                    fault_id(session.id, chunk),
                    rp,
                    local,
                    attempt,
                    t,
                    ctx.class_of[session.node_map[local]],
                );
                if lost {
                    push!(
                        end + net.latency(),
                        slot,
                        KernelEvent::Nack {
                            local,
                            attempt: attempt + 1,
                            chunk,
                        }
                    );
                } else {
                    push!(
                        end + net.latency(),
                        slot,
                        KernelEvent::Arrive { local, chunk }
                    );
                }
                push!(end, slot, KernelEvent::Free { node });
            }
            KernelEvent::Free { .. } => unreachable!("handled before the session borrow"),
        }
    }
    debug_assert!(sessions
        .iter()
        .all(|session| session.abandoned || session.pending == 0));
    CarryOut {
        busy_time,
        busy_until,
    }
}
