//! Thread-count-invariance soaks for the sharded cluster: the serialized
//! report must be byte-identical no matter how many rayon workers dispatch
//! the simulation components (the hard invariant of the unified occupancy
//! kernel), while multiple threads make wall-clock progress on a
//! multi-core host.
//!
//! The large acceptance soak (≥8 shards, ≥100k sessions) is `#[ignore]`d;
//! run it with `cargo test --release -p hnow-sim --test parallel_soak --
//! --ignored`.

use hnow_model::{NetParams, Time};
use hnow_sim::{RunConfig, ShardedCluster, ShardedTrafficReport};
use hnow_workload::{
    default_message_size, two_class_table, NodePool, SessionRequest, ShardMap, ShardedPattern,
};

/// One deterministic sharded run serialized to JSON under a rayon pool of
/// the given size, plus its wall-clock time.
fn run_serialized(
    pool: &NodePool,
    shards: usize,
    requests: &[SessionRequest],
    threads: usize,
) -> (String, std::time::Duration) {
    let config = RunConfig::default().sharded(shards).with_threads(threads);
    let started = std::time::Instant::now();
    let report: ShardedTrafficReport =
        ShardedCluster::with_config(pool, NetParams::new(2), &config)
            .unwrap()
            .run(requests)
            .unwrap();
    let elapsed = started.elapsed();
    (serde_json::to_string(&report).unwrap(), elapsed)
}

/// Intra-shard-only traffic (cross fraction 0) over `shards` shards, with
/// arrivals compressed enough to keep every shard's nodes contended.
fn soak_requests(
    pool: &NodePool,
    shards: usize,
    sessions: usize,
    seed: u64,
) -> Vec<SessionRequest> {
    let map = ShardMap::partition(pool, shards).unwrap();
    let mut requests = ShardedPattern::poisson(2.0, 5, 0.0)
        .generate(&map, sessions, seed)
        .unwrap();
    // A third of the stream is impatient so the churn gate's tie-breaks
    // are exercised at scale too.
    for (i, r) in requests.iter_mut().enumerate() {
        r.patience = (i % 3 == 0).then_some(Time::new(200));
    }
    requests
}

#[test]
fn sharded_reports_are_byte_identical_across_thread_counts() {
    let pool = NodePool::new(two_class_table(), default_message_size(), &[64, 32]).unwrap();
    let requests = soak_requests(&pool, 8, 10_000, 7);
    let (one, _) = run_serialized(&pool, 8, &requests, 1);
    for threads in [2, 4, 8] {
        let (many, _) = run_serialized(&pool, 8, &requests, threads);
        assert_eq!(
            one, many,
            "report bytes diverged between 1 and {threads} threads"
        );
    }
}

#[test]
#[ignore = "acceptance soak: run with --release -- --ignored"]
fn acceptance_soak_is_byte_identical_and_scales() {
    // ≥8 shards, ≥100k sessions, no cross traffic — 8 node-disjoint
    // components, so an 8-thread pool can run all of them concurrently.
    let pool = NodePool::new(two_class_table(), default_message_size(), &[256, 128]).unwrap();
    let requests = soak_requests(&pool, 8, 120_000, 42);
    let (one, t1) = run_serialized(&pool, 8, &requests, 1);
    let (eight, t8) = run_serialized(&pool, 8, &requests, 8);
    assert_eq!(one, eight, "report bytes diverged between 1 and 8 threads");
    eprintln!("soak wall-clock: 1 thread {t1:?}, 8 threads {t8:?}");
    // The speedup assertion needs real cores: on a single-CPU host the 8
    // workers time-slice one core and can only tie (plus scheduling
    // noise), which proves determinism but not scaling.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        assert!(
            t8 < t1,
            "8 threads over 8 disjoint components must beat sequential \
             wall-clock on a {cores}-core host (1 thread {t1:?}, 8 threads {t8:?})"
        );
    } else {
        eprintln!("single-core host: skipping the wall-clock speedup assertion");
    }
}
