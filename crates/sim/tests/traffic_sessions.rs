//! Property tests of the traffic engine against the single-shot planner.
//!
//! With zero contention (arrivals spaced beyond any completion) and batch
//! size 1, sessions are independent, so the engine must degenerate to the
//! single-shot planner: every session's achieved reception and delivery
//! latency equals the analytic `R_T`/`D_T` of its own plan, computed
//! independently of the engine.

use hnow_core::planner::{find, PlanRequest};
use hnow_model::{NetParams, Time};
use hnow_sim::sessions::TrafficEngine;
use hnow_sim::RunConfig;
use hnow_workload::traffic::{GroupSizeDist, NodePool, TrafficPattern};
use hnow_workload::{default_message_size, two_class_table};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zero_contention_batch_one_reproduces_analytic_times(
        seed in 0u64..10_000,
        latency in 0u64..4,
        fast in 2usize..7,
        slow in 1usize..5,
        sessions in 1usize..10,
        min_group in 1usize..4,
        span in 0usize..5,
    ) {
        let pool = NodePool::new(
            two_class_table(),
            default_message_size(),
            &[fast, slow],
        ).unwrap();
        let pattern = TrafficPattern {
            group_size: GroupSizeDist::Uniform {
                min: min_group,
                max: min_group + span,
            },
            ..TrafficPattern::poisson(5.0, 1)
        };
        let mut requests = pattern.generate(&pool, sessions, seed).unwrap();
        // Space arrivals far beyond any completion time: no two sessions
        // ever overlap, so no node is ever contended.
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::new(i as u64 * 10_000_000);
            r.patience = None;
        }
        let net = NetParams::new(latency);
        for planner_name in ["greedy", "greedy+leaf", "dp-optimal", "binomial"] {
            let config = RunConfig {
                planner: planner_name.to_string(),
                batch_size: 1,
                dp_cache_capacity: Some(8),
                ..RunConfig::default()
            };
            let report = TrafficEngine::with_config(&pool, net, &config)
                .run(&requests)
                .unwrap();
            prop_assert_eq!(report.completed, sessions);
            prop_assert_eq!(report.abandoned, 0);
            let planner = find(planner_name).unwrap();
            for (request, record) in requests.iter().zip(&report.per_session) {
                // Independent single-shot reference plan for this session's
                // multicast set (same class reduction the engine performs).
                let mut dests = Vec::new();
                for &member in &request.members {
                    dests.push(pool.spec_of_node(member));
                }
                let set = hnow_model::MulticastSet::new(
                    pool.spec_of_node(request.source),
                    dests,
                ).unwrap();
                let single = planner
                    .plan(&PlanRequest::new(set, net).with_seed(request.id))
                    .unwrap();
                prop_assert_eq!(
                    record.reception_latency,
                    single.reception_completion().raw(),
                    "planner {}: engine diverged from single-shot R_T", planner_name
                );
                prop_assert_eq!(
                    record.delivery_latency,
                    single.delivery_completion().raw(),
                    "planner {}: engine diverged from single-shot D_T", planner_name
                );
                prop_assert_eq!(record.planned_reception, record.reception_latency);
                prop_assert_eq!(record.planned_delivery, record.delivery_latency);
                prop_assert_eq!(record.queue_delay, 0);
            }
        }
    }
}
