//! Property test of hierarchical plan composition: for random limited-
//! heterogeneity instances (k ≤ 3 classes) under random shard partitions
//! (≤ 3 shards), a gateway tree with grafted per-shard subtrees — both
//! levels planned by registry planners — is a complete, valid schedule
//! whose *simulated* reception completion (the discrete-event engine that
//! enforces the occupancy constraint) equals the stitched analytic timing
//! [`compose`] reports.

use hnow_core::planner::{find, PlanRequest};
use hnow_core::schedule::compose::compose;
use hnow_core::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec};
use hnow_sim::execute_with_specs;
use proptest::prelude::*;

/// Three correlation-safe node classes (recv monotone in send).
fn arb_classes() -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec((1u64..=6, 0u64..=6), 3).prop_map(|raw| {
        let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
        raw.sort_unstable();
        let mut last_recv = 0;
        raw.into_iter()
            .map(|(send, recv)| {
                let recv = recv.max(last_recv);
                last_recv = recv;
                NodeSpec::new(send, recv)
            })
            .collect()
    })
}

/// A random instance: class table, source class, members as
/// `(class, shard)` pairs, and a network latency. The source lives in
/// shard 0.
fn arb_instance() -> impl Strategy<Value = (Vec<NodeSpec>, usize, Vec<(usize, usize)>, u64)> {
    (
        arb_classes(),
        0usize..3,
        prop::collection::vec((0usize..3, 0usize..3), 1..=8),
        0u64..4,
    )
}

/// Plans a multicast with the given registry planner, returning the tree
/// and the canonical per-node specs (`specs[0]` is the root).
fn plan_subtree(
    planner: &str,
    root: NodeSpec,
    members: &[NodeSpec],
) -> (ScheduleTree, Vec<NodeSpec>) {
    let set = MulticastSet::new(root, members.to_vec()).expect("correlation-safe by construction");
    let specs: Vec<NodeSpec> = (0..set.num_nodes()).map(|i| set.spec(NodeId(i))).collect();
    let plan = find(planner)
        .expect("registry planner")
        .plan(&PlanRequest::new(set, NetParams::new(1)))
        .expect("planning a valid instance succeeds");
    (plan.tree, specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grafted_gateway_schedules_are_valid_and_simulate_to_their_stitched_times(
        instance in arb_instance(),
        planner_choice in 0usize..2,
    ) {
        // The macro keeps a borrow of `instance` for failure reporting.
        let (classes, source_class, members, latency) = instance.clone();
        let planner = ["greedy+leaf", "fnf"][planner_choice];
        let net = NetParams::new(latency);
        let source = classes[source_class];

        // Partition the members into shards; the source anchors shard 0.
        let mut shard_members: Vec<Vec<NodeSpec>> = vec![Vec::new(); 3];
        for &(class, shard) in &members {
            shard_members[shard].push(classes[class]);
        }
        // Touched shards: 0 (home) plus every non-empty remote shard.
        let mut touched: Vec<usize> = vec![0];
        touched.extend((1..3).filter(|&s| !shard_members[s].is_empty()));

        // Remote gateways: the fastest member of the shard (first among
        // equals, mirroring the cluster's lowest-id tie-break).
        let mut gateways: Vec<(usize, NodeSpec)> = Vec::new();
        for &s in &touched[1..] {
            let gw = *shard_members[s]
                .iter()
                .min_by(|a, b| a.speed_cmp(b))
                .unwrap();
            gateways.push((s, gw));
        }
        // MulticastSet sorts destinations stably by speed, so replicate the
        // sort to know which gateway-tree node is which shard.
        let mut sorted_gateways = gateways.clone();
        sorted_gateways.sort_by(|a, b| a.1.speed_cmp(&b.1));

        // Level 1: the gateway tree.
        let gateway_specs: Vec<NodeSpec> = sorted_gateways.iter().map(|&(_, s)| s).collect();
        let (gateway_tree, _) = plan_subtree(planner, source, &gateway_specs);

        // Level 2: one subtree per gateway-tree node.
        let mut planned: Vec<(ScheduleTree, Vec<NodeSpec>)> = Vec::new();
        for i in 0..gateway_tree.num_nodes() {
            let (root, shard) = if i == 0 {
                (source, 0)
            } else {
                let (shard, gw) = sorted_gateways[i - 1];
                (gw, shard)
            };
            let mut local = shard_members[shard].clone();
            if shard != 0 {
                // Remove the one member promoted to gateway.
                let pos = local.iter().position(|s| *s == root).unwrap();
                local.remove(pos);
            }
            planned.push(if local.is_empty() {
                (ScheduleTree::new(1), vec![root])
            } else {
                plan_subtree(planner, root, &local)
            });
        }
        let subtrees: Vec<(&ScheduleTree, &[NodeSpec])> = planned
            .iter()
            .map(|(tree, specs)| (tree, specs.as_slice()))
            .collect();

        let composed = compose(&gateway_tree, &subtrees, net).expect("composition succeeds");

        // Structure: complete, covers every participant exactly once.
        prop_assert!(composed.tree.is_complete());
        prop_assert_eq!(composed.tree.num_nodes(), members.len() + 1);
        prop_assert_eq!(composed.specs.len(), composed.tree.num_nodes());

        // The simulated execution (which *enforces* the occupancy
        // constraint, so it doubles as a validity check) reproduces the
        // stitched analytic timing exactly.
        let trace = execute_with_specs(&composed.tree, &composed.specs, net)
            .expect("the stitched schedule must not double-book any node");
        prop_assert_eq!(trace.completion, composed.timing.reception_completion());
        for v in 1..composed.tree.num_nodes() {
            let v = NodeId(v);
            prop_assert_eq!(trace.delivery(v), composed.timing.delivery(v));
            prop_assert_eq!(trace.reception(v), composed.timing.reception(v));
        }
    }
}
