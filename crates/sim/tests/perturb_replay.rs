//! Integration tests of `hnow_sim::perturb` against the replay engine:
//! seeded jitter must be reproducible end-to-end (same seed → identical
//! trace), and a zero-jitter replay must match the nominal analytic times.

use hnow_core::greedy_schedule;
use hnow_core::planner::{find, PlanContext, PlanRequest};
use hnow_core::schedule::evaluate;
use hnow_model::{MulticastSet, NetParams, NodeSpec};
use hnow_sim::{execute_with_specs, PerturbConfig};

fn mixed_instance() -> (MulticastSet, NetParams) {
    let specs = vec![
        NodeSpec::new(5, 6),
        NodeSpec::new(5, 8),
        NodeSpec::new(10, 15),
        NodeSpec::new(10, 15),
        NodeSpec::new(20, 33),
        NodeSpec::new(40, 70),
    ];
    let set = MulticastSet::new(NodeSpec::new(5, 6), specs).expect("valid instance");
    (set, NetParams::new(3))
}

#[test]
fn seeded_jitter_replay_is_reproducible() {
    let (set, net) = mixed_instance();
    let tree = greedy_schedule(&set, net);
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let specs_a = PerturbConfig::new(0.25, seed).perturb(&set);
        let specs_b = PerturbConfig::new(0.25, seed).perturb(&set);
        assert_eq!(specs_a, specs_b, "perturbed specs differ for seed {seed}");
        let trace_a = execute_with_specs(&tree, &specs_a, net).expect("replay succeeds");
        let trace_b = execute_with_specs(&tree, &specs_b, net).expect("replay succeeds");
        assert_eq!(trace_a, trace_b, "traces differ for seed {seed}");
    }
}

#[test]
fn different_seeds_change_the_trace() {
    let (set, net) = mixed_instance();
    let tree = greedy_schedule(&set, net);
    let trace_a = execute_with_specs(&tree, &PerturbConfig::new(0.25, 1).perturb(&set), net)
        .expect("replay succeeds");
    let trace_b = execute_with_specs(&tree, &PerturbConfig::new(0.25, 2).perturb(&set), net)
        .expect("replay succeeds");
    // With 25% jitter on six distinct nodes, two seeds colliding on every
    // overhead would be astronomically unlikely; a collision here means the
    // seed is being ignored.
    assert_ne!(
        trace_a, trace_b,
        "different seeds produced identical traces"
    );
}

#[test]
fn zero_jitter_replay_matches_nominal_analytic_times() {
    let (set, net) = mixed_instance();
    for name in [
        "greedy",
        "greedy+leaf",
        "fnf",
        "binomial",
        "chain",
        "star",
        "random",
    ] {
        let request = PlanRequest::new(set.clone(), net).with_seed(7);
        let tree = find(name)
            .unwrap()
            .construct(&request, &PlanContext::new())
            .unwrap()
            .tree;
        let specs = PerturbConfig::new(0.0, 99).perturb(&set);
        let trace = execute_with_specs(&tree, &specs, net).expect("replay succeeds");
        let timing = evaluate(&tree, &set, net).expect("evaluation succeeds");
        for v in set.destination_ids() {
            assert_eq!(
                trace.delivery(v),
                timing.delivery(v),
                "{name}: delivery of {v:?} drifted under zero jitter"
            );
            assert_eq!(
                trace.reception(v),
                timing.reception(v),
                "{name}: reception of {v:?} drifted under zero jitter"
            );
        }
        assert_eq!(
            trace.completion,
            timing.reception_completion(),
            "{name}: completion drifted under zero jitter"
        );
    }
}
