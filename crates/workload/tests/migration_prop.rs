//! Property test of shard-map migration safety: for random pools, random
//! shard counts and random migration sequences, every intermediate map
//! keeps the global↔local id maps bijective, preserves every node's
//! class, and never drains a shard — and undoing the sequence (reverse
//! order, inverse moves) restores a partition identical to the original,
//! so a migrated-then-reverted cluster is observationally the untouched
//! one.

use hnow_workload::{default_message_size, two_class_table, NodePool, ShardMap};
use proptest::prelude::*;

/// The full partition contract checked after every successful move.
fn assert_invariants(map: &ShardMap, pool: &NodePool) {
    assert_eq!(map.num_nodes(), pool.len());
    let mut covered = 0;
    for s in 0..map.num_shards() {
        let globals = map.globals_of(s);
        assert!(!globals.is_empty(), "shard {s} drained");
        assert_eq!(globals.len(), map.shard(s).len());
        covered += globals.len();
        for (local, &g) in globals.iter().enumerate() {
            assert_eq!(map.locate(g), (s, local), "locate inverts globals_of");
            assert_eq!(map.global_of(s, local), g, "global_of inverts locate");
            assert_eq!(map.shard_of(g), s);
            assert_eq!(map.class_of(g), pool.class_of(g), "class preserved");
            assert_eq!(map.shard(s).class_of(local), pool.class_of(g));
        }
    }
    assert_eq!(covered, pool.len(), "partition covers every node once");
}

/// Structural equality through the public accessors.
fn assert_same(a: &ShardMap, b: &ShardMap) {
    assert_eq!(a.num_shards(), b.num_shards());
    for s in 0..a.num_shards() {
        assert_eq!(a.globals_of(s), b.globals_of(s), "shard {s} differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_migration_sequences_preserve_partition_invariants(
        counts in (2usize..=6, 2usize..=6),
        shards in 2usize..=4,
        ops in prop::collection::vec((0usize..64, 0usize..8), 1..=8),
    ) {
        let (c0, c1) = counts;
        let pool =
            NodePool::new(two_class_table(), default_message_size(), &[c0, c1]).unwrap();
        let shards = shards.min(pool.len());
        let original = ShardMap::partition(&pool, shards).unwrap();
        assert_invariants(&original, &pool);

        let mut map = original.clone();
        let mut applied: Vec<(usize, usize)> = Vec::new();
        for &(node_sel, shard_sel) in &ops {
            let node = node_sel % pool.len();
            let to = shard_sel % shards;
            let from = map.shard_of(node);
            match map.migrate(node, to) {
                Ok(next) => {
                    map = next;
                    assert_invariants(&map, &pool);
                    applied.push((node, from));
                }
                Err(_) => {
                    // Only no-ops and drains are rejectable here.
                    prop_assert!(to == from || map.globals_of(from).len() == 1);
                }
            }
        }

        // Undo in reverse order: each inverse move must succeed and land
        // back on the exact original partition.
        for (node, back_to) in applied.into_iter().rev() {
            map = map.migrate(node, back_to).unwrap();
            assert_invariants(&map, &pool);
        }
        assert_same(&map, &original);
    }
}
