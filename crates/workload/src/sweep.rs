//! Parameter sweeps.
//!
//! Experiments report series over a swept parameter (cluster size, slow-node
//! fraction, ratio spread, message size, latency). A [`Sweep`] is simply a
//! named list of points, each of which materialises into a multicast
//! instance; the experiment harness maps a set of strategies over every
//! point.

use crate::error::WorkloadError;
use crate::generator::{bimodal_cluster, RandomClusterConfig};
use hnow_model::models::Instance;
use hnow_model::NetParams;
use serde::{Deserialize, Serialize};

/// One point of a sweep: a label (the x-value) plus the instance generator
/// inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value, as a number (for plotting).
    pub x: f64,
    /// Generator configuration for this point.
    pub config: RandomClusterConfig,
    /// Slow fraction when the sweep uses the bimodal generator (`None` for
    /// the band generator).
    pub bimodal_slow_fraction: Option<f64>,
    /// Network latency.
    pub latency: u64,
    /// Seed.
    pub seed: u64,
}

impl SweepPoint {
    /// Materialises the point.
    pub fn instance(&self) -> Result<Instance, WorkloadError> {
        let net = NetParams::new(self.latency);
        let set = match self.bimodal_slow_fraction {
            Some(frac) => bimodal_cluster(self.config.destinations, frac, self.seed)?,
            None => self.config.generate(self.seed)?,
        };
        Ok(Instance::new(set, net))
    }
}

/// A named series of sweep points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// Name of the swept parameter (e.g. "destinations", "slow fraction").
    pub parameter: String,
    /// The points, in presentation order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Sweep over the number of destinations with otherwise default random
    /// clusters.
    pub fn over_cluster_size(sizes: &[usize], latency: u64, seed: u64) -> Sweep {
        Sweep {
            parameter: "destinations".to_string(),
            points: sizes
                .iter()
                .map(|&n| SweepPoint {
                    x: n as f64,
                    config: RandomClusterConfig {
                        destinations: n,
                        ..RandomClusterConfig::default()
                    },
                    bimodal_slow_fraction: None,
                    latency,
                    seed: seed ^ (n as u64).wrapping_mul(0x9E37_79B9),
                })
                .collect(),
        }
    }

    /// Sweep over the fraction of slow nodes in a bimodal cluster of fixed
    /// size.
    pub fn over_slow_fraction(
        destinations: usize,
        fractions: &[f64],
        latency: u64,
        seed: u64,
    ) -> Sweep {
        Sweep {
            parameter: "slow fraction".to_string(),
            points: fractions
                .iter()
                .enumerate()
                .map(|(i, &f)| SweepPoint {
                    x: f,
                    config: RandomClusterConfig {
                        destinations,
                        ..RandomClusterConfig::default()
                    },
                    bimodal_slow_fraction: Some(f),
                    latency,
                    seed: seed ^ (i as u64).wrapping_mul(0x1234_5678_9ABC),
                })
                .collect(),
        }
    }

    /// Sweep over the receive-send ratio spread: every point draws ratios
    /// from `[1.0, 1.0 + spread]`.
    pub fn over_ratio_spread(
        destinations: usize,
        spreads: &[f64],
        latency: u64,
        seed: u64,
    ) -> Sweep {
        Sweep {
            parameter: "ratio spread".to_string(),
            points: spreads
                .iter()
                .enumerate()
                .map(|(i, &s)| SweepPoint {
                    x: s,
                    config: RandomClusterConfig {
                        destinations,
                        min_ratio: 1.0,
                        max_ratio: 1.0 + s.max(0.0),
                        ..RandomClusterConfig::default()
                    },
                    bimodal_slow_fraction: None,
                    latency,
                    seed: seed ^ (i as u64).wrapping_mul(0xDEAD_BEEF),
                })
                .collect(),
        }
    }

    /// Sweep over the network latency with a fixed cluster.
    pub fn over_latency(destinations: usize, latencies: &[u64], seed: u64) -> Sweep {
        Sweep {
            parameter: "latency".to_string(),
            points: latencies
                .iter()
                .map(|&l| SweepPoint {
                    x: l as f64,
                    config: RandomClusterConfig {
                        destinations,
                        ..RandomClusterConfig::default()
                    },
                    bimodal_slow_fraction: None,
                    latency: l,
                    seed,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_size_sweep_materialises() {
        let sweep = Sweep::over_cluster_size(&[4, 8, 16], 1, 7);
        assert_eq!(sweep.points.len(), 3);
        for (i, point) in sweep.points.iter().enumerate() {
            let inst = point.instance().unwrap();
            assert_eq!(inst.num_destinations(), [4, 8, 16][i]);
        }
    }

    #[test]
    fn slow_fraction_sweep_materialises() {
        let sweep = Sweep::over_slow_fraction(12, &[0.0, 0.5, 1.0], 2, 3);
        for point in &sweep.points {
            assert_eq!(point.instance().unwrap().num_destinations(), 12);
        }
        assert_eq!(sweep.parameter, "slow fraction");
    }

    #[test]
    fn ratio_spread_sweep_widens_alpha() {
        let sweep = Sweep::over_ratio_spread(32, &[0.0, 0.8], 1, 11);
        let narrow = sweep.points[0].instance().unwrap();
        let wide = sweep.points[1].instance().unwrap();
        let narrow_spread = narrow.set.alpha_max() - narrow.set.alpha_min();
        let wide_spread = wide.set.alpha_max() - wide.set.alpha_min();
        assert!(wide_spread >= narrow_spread);
    }

    #[test]
    fn latency_sweep_sets_latency() {
        let sweep = Sweep::over_latency(8, &[0, 5, 50], 1);
        for (i, point) in sweep.points.iter().enumerate() {
            assert_eq!(point.instance().unwrap().net.latency().raw(), [0, 5, 50][i]);
        }
    }

    #[test]
    fn sweeps_serialize() {
        let sweep = Sweep::over_cluster_size(&[2, 4], 1, 9);
        let json = serde_json::to_string(&sweep).unwrap();
        let back: Sweep = serde_json::from_str(&json).unwrap();
        assert_eq!(sweep, back);
    }
}
