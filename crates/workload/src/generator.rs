//! Seeded random cluster generators.
//!
//! Random instances drive the bound-validation and comparison experiments.
//! All generators take an explicit seed and are deterministic, and every
//! generated instance satisfies the model's correlation assumption (no
//! overhead inversions) by construction: nodes are generated as (sending
//! overhead, receive-send ratio) pairs, sorted by sending overhead, and the
//! receiving overheads are then monotonised.

use crate::error::WorkloadError;
use hnow_model::{MulticastSet, NodeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the random cluster generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomClusterConfig {
    /// Number of destination nodes.
    pub destinations: usize,
    /// Smallest sending overhead (inclusive).
    pub min_send: u64,
    /// Largest sending overhead (inclusive).
    pub max_send: u64,
    /// Smallest receive-send ratio (the `α_min` the instance aims for).
    pub min_ratio: f64,
    /// Largest receive-send ratio (the `α_max` the instance aims for).
    pub max_ratio: f64,
    /// Whether the source is drawn like a destination (`false` makes the
    /// source the fastest possible node).
    pub random_source: bool,
}

impl Default for RandomClusterConfig {
    /// Overheads 5–50 with ratios in the published 1.05–1.85 range.
    fn default() -> Self {
        RandomClusterConfig {
            destinations: 16,
            min_send: 5,
            max_send: 50,
            min_ratio: 1.05,
            max_ratio: 1.85,
            random_source: true,
        }
    }
}

impl RandomClusterConfig {
    /// Generates a multicast set from this configuration and a seed.
    pub fn generate(&self, seed: u64) -> Result<MulticastSet, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let draw = |rng: &mut StdRng| -> (u64, f64) {
            let send = rng.gen_range(self.min_send..=self.max_send.max(self.min_send));
            let ratio = if self.max_ratio > self.min_ratio {
                rng.gen_range(self.min_ratio..=self.max_ratio)
            } else {
                self.min_ratio
            };
            (send.max(1), ratio.max(0.0))
        };
        let mut raw: Vec<(u64, f64)> = (0..self.destinations).map(|_| draw(&mut rng)).collect();
        let source_raw = if self.random_source {
            draw(&mut rng)
        } else {
            (self.min_send.max(1), self.min_ratio.max(0.0))
        };
        raw.push(source_raw);
        // Sort by sending overhead and monotonise the receiving overheads so
        // the correlation assumption holds even after rounding.
        raw.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
        let mut specs = Vec::with_capacity(raw.len());
        let mut last_recv = 0u64;
        for &(send, ratio) in &raw {
            let mut recv = (send as f64 * ratio).round() as u64;
            if recv < last_recv {
                recv = last_recv;
            }
            last_recv = recv;
            specs.push(NodeSpec::new(send, recv));
        }
        // All draws are i.i.d., so the source can be any of the generated
        // nodes: a uniformly drawn one when `random_source` is set, otherwise
        // the fastest node (index 0 after sorting).
        let source = if self.random_source {
            specs.swap_remove(rng.gen_range(0..specs.len()))
        } else {
            specs.remove(0)
        };
        Ok(MulticastSet::new(source, specs)?)
    }
}

/// Generates a bimodal "fast majority plus slow stragglers" cluster:
/// `destinations` nodes of which `slow_fraction` are drawn from a band an
/// order of magnitude slower than the rest.
pub fn bimodal_cluster(
    destinations: usize,
    slow_fraction: f64,
    seed: u64,
) -> Result<MulticastSet, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let slow_count = ((destinations as f64) * slow_fraction.clamp(0.0, 1.0)).round() as usize;
    let slow_count = slow_count.min(destinations);
    let mut raw: Vec<(u64, f64)> = Vec::with_capacity(destinations + 1);
    for i in 0..destinations {
        let (lo, hi) = if i < slow_count { (60, 120) } else { (5, 15) };
        raw.push((rng.gen_range(lo..=hi), rng.gen_range(1.05..=1.85)));
    }
    // Fast source.
    raw.push((rng.gen_range(5..=15), rng.gen_range(1.05..=1.85)));
    raw.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
    let mut specs = Vec::with_capacity(raw.len());
    let mut last_recv = 0u64;
    for &(send, ratio) in &raw {
        let recv = ((send as f64 * ratio).round() as u64).max(last_recv);
        last_recv = recv;
        specs.push(NodeSpec::new(send, recv));
    }
    let source = specs.remove(0); // fastest node is the source
    Ok(MulticastSet::new(source, specs)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = RandomClusterConfig::default();
        assert_eq!(cfg.generate(9).unwrap(), cfg.generate(9).unwrap());
        assert_ne!(cfg.generate(9).unwrap(), cfg.generate(10).unwrap());
    }

    #[test]
    fn generated_instances_are_valid_and_sized() {
        let cfg = RandomClusterConfig {
            destinations: 40,
            ..RandomClusterConfig::default()
        };
        for seed in 0..30u64 {
            let set = cfg.generate(seed).unwrap();
            assert_eq!(set.num_destinations(), 40);
            assert!(set.alpha_min() >= 0.9, "alpha_min {}", set.alpha_min());
            assert!(set.alpha_max() <= 2.1, "alpha_max {}", set.alpha_max());
        }
    }

    #[test]
    fn ratio_band_is_respected_approximately() {
        // Rounding to integers distorts ratios slightly; the distortion must
        // stay small for realistic overhead magnitudes.
        let cfg = RandomClusterConfig {
            destinations: 64,
            min_send: 20,
            max_send: 200,
            min_ratio: 1.05,
            max_ratio: 1.85,
            random_source: true,
        };
        let set = cfg.generate(123).unwrap();
        assert!(set.alpha_min() > 1.0);
        assert!(set.alpha_max() < 1.95);
    }

    #[test]
    fn degenerate_configs_still_generate() {
        let cfg = RandomClusterConfig {
            destinations: 3,
            min_send: 4,
            max_send: 4,
            min_ratio: 1.0,
            max_ratio: 1.0,
            random_source: false,
        };
        let set = cfg.generate(0).unwrap();
        assert_eq!(set.num_destinations(), 3);
        assert!(set.is_homogeneous());
    }

    #[test]
    fn empty_cluster_is_allowed_by_generator() {
        let cfg = RandomClusterConfig {
            destinations: 0,
            ..RandomClusterConfig::default()
        };
        let set = cfg.generate(5).unwrap();
        assert_eq!(set.num_destinations(), 0);
    }

    #[test]
    fn bimodal_clusters_have_a_wide_spread() {
        let set = bimodal_cluster(20, 0.3, 7).unwrap();
        assert_eq!(set.num_destinations(), 20);
        let min_send = set
            .destinations()
            .iter()
            .map(|s| s.send().raw())
            .min()
            .unwrap();
        let max_send = set
            .destinations()
            .iter()
            .map(|s| s.send().raw())
            .max()
            .unwrap();
        assert!(max_send >= 4 * min_send, "{min_send}..{max_send}");
        // Source is the fastest node.
        assert!(set.source().send().raw() <= min_send);
    }

    #[test]
    fn bimodal_extremes() {
        assert!(bimodal_cluster(10, 0.0, 1).unwrap().num_destinations() == 10);
        assert!(bimodal_cluster(10, 1.0, 1).unwrap().num_destinations() == 10);
    }
}
