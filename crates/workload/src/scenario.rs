//! Serialisable experiment scenarios.
//!
//! A scenario bundles everything needed to reproduce one experimental data
//! point: the cluster composition, the message size, the network latency and
//! the seed. Scenarios serialise to JSON so experiment inputs can be stored
//! alongside their results.

use crate::error::WorkloadError;
use crate::generator::{bimodal_cluster, RandomClusterConfig};
use hnow_model::{models::Instance, MulticastSet, NetParams};
use serde::{Deserialize, Serialize};

/// How the cluster of a scenario is generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterKind {
    /// Random cluster with overheads and ratios drawn from bands.
    Random(RandomClusterConfig),
    /// Bimodal fast/slow cluster with the given number of destinations and
    /// slow fraction.
    Bimodal {
        /// Number of destination nodes.
        destinations: usize,
        /// Fraction of destinations drawn from the slow band.
        slow_fraction: f64,
    },
    /// The exact 5-node instance of the paper's Figure 1.
    Figure1,
}

/// A reproducible experiment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name (used as a table row label).
    pub name: String,
    /// Cluster composition.
    pub cluster: ClusterKind,
    /// Network latency `L`.
    pub latency: u64,
    /// RNG seed for generated clusters.
    pub seed: u64,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(name: impl Into<String>, cluster: ClusterKind, latency: u64, seed: u64) -> Self {
        Scenario {
            name: name.into(),
            cluster,
            latency,
            seed,
        }
    }

    /// The Figure 1 scenario of the paper.
    pub fn figure1() -> Self {
        Scenario::new("figure1", ClusterKind::Figure1, 1, 0)
    }

    /// Materialises the scenario into a concrete receive-send instance.
    pub fn instance(&self) -> Result<Instance, WorkloadError> {
        let net = NetParams::new(self.latency);
        let set = match &self.cluster {
            ClusterKind::Random(cfg) => cfg.generate(self.seed)?,
            ClusterKind::Bimodal {
                destinations,
                slow_fraction,
            } => bimodal_cluster(*destinations, *slow_fraction, self.seed)?,
            ClusterKind::Figure1 => {
                let slow = hnow_model::NodeSpec::new(2, 3);
                let fast = hnow_model::NodeSpec::new(1, 1);
                MulticastSet::new(slow, vec![fast, fast, fast, slow])?
            }
        };
        Ok(Instance::new(set, net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_scenario() {
        let inst = Scenario::figure1().instance().unwrap();
        assert_eq!(inst.num_destinations(), 4);
        assert_eq!(inst.net.latency().raw(), 1);
    }

    #[test]
    fn scenarios_serialize_and_reproduce() {
        let scenario = Scenario::new(
            "random-32",
            ClusterKind::Random(RandomClusterConfig {
                destinations: 32,
                ..RandomClusterConfig::default()
            }),
            3,
            99,
        );
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
        assert_eq!(
            scenario.instance().unwrap(),
            back.instance().unwrap(),
            "same scenario must produce the same instance"
        );
    }

    #[test]
    fn bimodal_scenario() {
        let scenario = Scenario::new(
            "bimodal",
            ClusterKind::Bimodal {
                destinations: 12,
                slow_fraction: 0.25,
            },
            2,
            5,
        );
        let inst = scenario.instance().unwrap();
        assert_eq!(inst.num_destinations(), 12);
    }
}
