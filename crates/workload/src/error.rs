//! Workload generation errors.

use hnow_model::ModelError;
use std::error::Error;
use std::fmt;

/// Errors raised while generating clusters or scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The underlying model rejected the generated instance.
    Model(ModelError),
    /// A generator was asked for an empty cluster where at least one
    /// destination is required.
    EmptyCluster,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Model(e) => write!(f, "model error: {e}"),
            WorkloadError::EmptyCluster => write!(f, "generated cluster has no destinations"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Model(e) => Some(e),
            WorkloadError::EmptyCluster => None,
        }
    }
}

impl From<ModelError> for WorkloadError {
    fn from(e: ModelError) -> Self {
        WorkloadError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: WorkloadError = ModelError::EmptyClassTable.into();
        assert!(e.to_string().contains("model error"));
        assert!(Error::source(&e).is_some());
        assert!(WorkloadError::EmptyCluster
            .to_string()
            .contains("no destinations"));
        assert!(Error::source(&WorkloadError::EmptyCluster).is_none());
    }
}
