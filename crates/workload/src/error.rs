//! Workload generation errors.

use hnow_model::ModelError;
use std::error::Error;
use std::fmt;

/// Errors raised while generating clusters or scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The underlying model rejected the generated instance.
    Model(ModelError),
    /// A generator was asked for an empty cluster where at least one
    /// destination is required.
    EmptyCluster,
    /// A traffic pattern's per-class weight vector does not match the node
    /// pool's class count.
    WeightMismatch {
        /// Number of weights supplied.
        got: usize,
        /// Number of classes in the pool.
        expected: usize,
    },
    /// A per-class node-count vector does not match the class table.
    CountMismatch {
        /// Number of counts supplied.
        got: usize,
        /// Number of classes in the table.
        expected: usize,
    },
    /// A traffic pattern's per-class weights carry no positive mass.
    DegenerateWeights,
    /// A group-size distribution is empty (`min > max` or zero-sized
    /// groups).
    InvalidGroupSize {
        /// Smallest group size of the distribution.
        min: usize,
        /// Largest group size of the distribution.
        max: usize,
    },
    /// An arrival profile cannot generate a meaningful stream (non-positive
    /// or non-finite Poisson mean gap, zero-session bursts).
    DegenerateArrivals,
    /// A shard partition was requested with zero shards or more shards than
    /// the pool has nodes.
    InvalidShardCount {
        /// Requested number of shards.
        shards: usize,
        /// Nodes available in the pool.
        nodes: usize,
    },
    /// A cross-shard fraction outside `[0, 1]` (or non-finite) was supplied.
    InvalidFraction,
    /// A node migration was rejected: unknown node or target shard, a no-op
    /// move to the node's current shard, or a move that would empty the
    /// source shard.
    InvalidMigration {
        /// Global id of the node asked to move.
        global: usize,
        /// Requested destination shard.
        to_shard: usize,
    },
    /// A hot-spot pattern was configured with zero sessions per phase.
    DegeneratePhase,
    /// A stream pattern was configured with zero chunks per session.
    DegenerateChunks,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Model(e) => write!(f, "model error: {e}"),
            WorkloadError::EmptyCluster => write!(f, "generated cluster has no destinations"),
            WorkloadError::WeightMismatch { got, expected } => write!(
                f,
                "traffic pattern has {got} class weights but the pool has {expected} classes"
            ),
            WorkloadError::CountMismatch { got, expected } => write!(
                f,
                "{got} per-class node counts supplied but the class table has {expected} classes"
            ),
            WorkloadError::DegenerateWeights => {
                write!(f, "traffic pattern class weights have no positive mass")
            }
            WorkloadError::InvalidGroupSize { min, max } => {
                write!(f, "empty group-size distribution (min {min}, max {max})")
            }
            WorkloadError::DegenerateArrivals => write!(
                f,
                "arrival profile needs a positive finite mean gap / burst size"
            ),
            WorkloadError::InvalidShardCount { shards, nodes } => {
                write!(f, "cannot split a {nodes}-node pool into {shards} shard(s)")
            }
            WorkloadError::InvalidFraction => {
                write!(f, "cross-shard fraction must be a finite value in [0, 1]")
            }
            WorkloadError::InvalidMigration { global, to_shard } => {
                write!(f, "cannot migrate node {global} to shard {to_shard}")
            }
            WorkloadError::DegeneratePhase => {
                write!(f, "hot-spot pattern needs at least one session per phase")
            }
            WorkloadError::DegenerateChunks => {
                write!(f, "stream pattern needs at least one chunk per session")
            }
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for WorkloadError {
    fn from(e: ModelError) -> Self {
        WorkloadError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: WorkloadError = ModelError::EmptyClassTable.into();
        assert!(e.to_string().contains("model error"));
        assert!(Error::source(&e).is_some());
        assert!(WorkloadError::EmptyCluster
            .to_string()
            .contains("no destinations"));
        assert!(Error::source(&WorkloadError::EmptyCluster).is_none());
    }
}
