//! Shifting hot-spot traffic over a shard partition.
//!
//! The control plane's win condition (ROADMAP: "Live service control
//! plane") is goodput under *skewed, moving* load — the regime where a
//! static partition degrades: one shard saturates and sheds-by-abandonment
//! while the others idle, and by the time any fixed assignment would suit
//! the skew, the skew has moved. [`HotSpotPattern`] generates exactly that
//! workload: sessions arrive in bursts (flash crowds make same-instant
//! admission ordering matter), and in each *phase* a configurable fraction
//! of them pins both source and members inside one **hot shard**; the hot
//! shard rotates deterministically phase by phase, so any control policy
//! that merely adapts to the first hot spot is punished by the second.
//!
//! Generation is deterministic per `(map, pattern, sessions, seed)`, like
//! every other generator in this crate, and emits **global** node ids so
//! one request vector can drive controlled, uncontrolled and flat engines
//! alike.

use crate::error::WorkloadError;
use crate::sharding::ShardMap;
use crate::traffic::{pick_from, SessionRequest, TrafficPattern};
use hnow_model::Time;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded hot-spot load over a [`ShardMap`] whose hot shard shifts every
/// `phase_sessions` sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpotPattern {
    /// Arrivals, group sizes, class weights and churn of the offered load
    /// ([`TrafficPattern`] semantics).
    pub base: TrafficPattern,
    /// Number of sessions per hot-spot phase (> 0). Session `id` belongs
    /// to phase `id / phase_sessions`, and phase `p` heats shard
    /// `p % num_shards`.
    pub phase_sessions: usize,
    /// Probability in `[0, 1]` that a session is pinned to the current hot
    /// shard (source and members all drawn from it). The remainder draw
    /// pool-wide and may span shards organically.
    pub hot_fraction: f64,
}

impl HotSpotPattern {
    /// A bursty hot-spot pattern: `burst` sessions per flash crowd every
    /// `period` ticks, group sizes uniform in `min_group..=max_group`.
    pub fn bursty(
        burst: usize,
        period: u64,
        min_group: usize,
        max_group: usize,
        phase_sessions: usize,
        hot_fraction: f64,
    ) -> Self {
        HotSpotPattern {
            base: TrafficPattern {
                arrivals: crate::traffic::ArrivalProfile::Bursty { burst, period },
                group_size: crate::traffic::GroupSizeDist::Uniform {
                    min: min_group,
                    max: max_group,
                },
                class_weights: None,
                churn: None,
            },
            phase_sessions,
            hot_fraction,
        }
    }

    /// Generates `sessions` requests over the partition, deterministically
    /// per seed. Hot sessions clamp their group size to the hot shard's
    /// remaining capacity; background sessions clamp to the whole pool.
    pub fn generate(
        &self,
        map: &ShardMap,
        sessions: usize,
        seed: u64,
    ) -> Result<Vec<SessionRequest>, WorkloadError> {
        if !(self.hot_fraction.is_finite() && (0.0..=1.0).contains(&self.hot_fraction)) {
            return Err(WorkloadError::InvalidFraction);
        }
        if self.phase_sessions == 0 {
            return Err(WorkloadError::DegeneratePhase);
        }
        let pool_len = map.num_nodes();
        self.base.validate(map.shard(0).k(), pool_len)?;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::with_capacity(sessions);
        let mut clock = 0u64;
        let mut used = vec![false; pool_len];
        for id in 0..sessions as u64 {
            let arrival = self.base.sample_arrival(&mut rng, &mut clock, id);
            let nominal = self.base.sample_group(&mut rng);
            let hot_shard = (id as usize / self.phase_sessions) % map.num_shards();
            let hot = rng.next_f64() < self.hot_fraction;

            used.fill(false);
            let within = hot.then_some(hot_shard);
            let source = self.pick(&mut rng, map, &mut used, within);
            let capacity = match within {
                Some(s) => map.shard(s).len(),
                None => pool_len,
            };
            let group = nominal.min(capacity - 1);
            let members: Vec<usize> = (0..group)
                .map(|_| self.pick(&mut rng, map, &mut used, within))
                .collect();

            let patience = self.base.sample_patience(&mut rng);
            requests.push(SessionRequest {
                id,
                arrival: Time::new(arrival),
                source,
                members,
                patience,
                chunks: None,
            });
        }
        Ok(requests)
    }

    /// The hot shard of a session id under this pattern's phase schedule.
    pub fn hot_shard_of(&self, id: u64, shards: usize) -> usize {
        (id as usize / self.phase_sessions.max(1)) % shards.max(1)
    }

    /// One unused node (marked used), optionally restricted to one shard,
    /// honouring the base pattern's class weights.
    fn pick(
        &self,
        rng: &mut StdRng,
        map: &ShardMap,
        used: &mut [bool],
        within: Option<usize>,
    ) -> usize {
        let free: Vec<usize> = (0..used.len())
            .filter(|&g| !used[g] && within.is_none_or(|s| map.shard_of(g) == s))
            .collect();
        let node = pick_from(
            rng,
            self.base.class_weights.as_deref(),
            map.shard(0).k(),
            &free,
            |g| map.class_of(g),
        );
        used[node] = true;
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{default_message_size, two_class_table};
    use crate::traffic::NodePool;

    fn map() -> (NodePool, ShardMap) {
        let pool = NodePool::new(two_class_table(), default_message_size(), &[12, 8]).unwrap();
        let map = ShardMap::partition(&pool, 4).unwrap();
        (pool, map)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (_, map) = map();
        let pattern = HotSpotPattern::bursty(4, 50, 2, 5, 20, 0.8);
        let a = pattern.generate(&map, 100, 7).unwrap();
        let b = pattern.generate(&map, 100, 7).unwrap();
        assert_eq!(a, b);
        let c = pattern.generate(&map, 100, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn hot_sessions_concentrate_on_the_rotating_hot_shard() {
        let (_, map) = map();
        // Fully hot: every session must live entirely in its phase's shard.
        let pattern = HotSpotPattern::bursty(4, 50, 2, 4, 25, 1.0);
        let requests = pattern.generate(&map, 100, 3).unwrap();
        for r in &requests {
            let expected = pattern.hot_shard_of(r.id, map.num_shards());
            assert_eq!(
                (r.id as usize / 25) % 4,
                expected,
                "phase arithmetic mismatch"
            );
            assert_eq!(map.shard_of(r.source), expected, "session {}", r.id);
            for &m in &r.members {
                assert_eq!(map.shard_of(m), expected, "session {}", r.id);
            }
        }
        // The hot shard genuinely rotates: sessions 0 and 25 differ.
        assert_ne!(
            map.shard_of(requests[0].source),
            map.shard_of(requests[25].source)
        );
    }

    #[test]
    fn background_sessions_roam_the_whole_pool() {
        let (pool, map) = map();
        let pattern = HotSpotPattern::bursty(8, 30, 3, 6, 50, 0.0);
        let requests = pattern.generate(&map, 120, 11).unwrap();
        // With hot_fraction 0 nothing is pinned; over 120 sessions of group
        // ≥ 3 some must span shards.
        assert!(requests.iter().any(|r| map.is_cross_shard(r)));
        for r in &requests {
            let mut all = r.members.clone();
            all.push(r.source);
            all.sort_unstable();
            let n = all.len();
            all.dedup();
            assert_eq!(all.len(), n, "distinct participants");
            assert!(all.iter().all(|&v| v < pool.len()));
        }
    }

    #[test]
    fn bursts_arrive_at_the_same_instant() {
        let (_, map) = map();
        let pattern = HotSpotPattern::bursty(5, 100, 2, 4, 20, 0.5);
        let requests = pattern.generate(&map, 40, 9).unwrap();
        // Bursty arrivals: ids 0..5 share one instant, 5..10 the next.
        for chunk in requests.chunks(5) {
            assert!(chunk.windows(2).all(|w| w[0].arrival == w[1].arrival));
        }
        assert!(requests[0].arrival < requests[5].arrival);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let (_, map) = map();
        for bad in [-0.1, 1.5, f64::NAN] {
            let pattern = HotSpotPattern::bursty(4, 50, 2, 4, 20, bad);
            assert!(matches!(
                pattern.generate(&map, 1, 0),
                Err(WorkloadError::InvalidFraction)
            ));
        }
        let pattern = HotSpotPattern::bursty(4, 50, 2, 4, 0, 0.5);
        assert!(matches!(
            pattern.generate(&map, 1, 0),
            Err(WorkloadError::DegeneratePhase)
        ));
        let pattern = HotSpotPattern::bursty(0, 50, 2, 4, 20, 0.5);
        assert!(matches!(
            pattern.generate(&map, 1, 0),
            Err(WorkloadError::DegenerateArrivals)
        ));
    }
}
