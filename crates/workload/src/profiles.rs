//! Synthetic workstation profiles.
//!
//! The paper motivates its assumptions with published measurements: real
//! workstation clusters of the late 1990s exhibited receive-send ratios
//! between roughly 1.05 and 1.85 (Banikazemi et al. 1999; Chun, Mainwaring
//! and Culler 1998). We do not have those machines, so this module defines a
//! family of *synthetic* workstation classes whose fixed and per-kilobyte
//! overhead components span the published ratio range and the published
//! fast/slow spread (roughly one order of magnitude between the fastest
//! network interface and a legacy protocol stack). Every experiment that
//! needs "a realistic cluster" draws from these profiles, and the
//! substitution is documented in DESIGN.md §2.

use hnow_model::{ClassTable, MessageSize, NodeClass, OverheadProfile};

/// A modern, well-tuned workstation with a user-level messaging layer
/// (ratio ≈ 1.1 at small messages).
pub fn fast_workstation() -> NodeClass {
    NodeClass::new("fast-ws", OverheadProfile::new(10, 3, 12, 3))
}

/// A mid-range workstation using a kernel TCP stack (ratio ≈ 1.3).
pub fn midrange_workstation() -> NodeClass {
    NodeClass::new("mid-ws", OverheadProfile::new(22, 5, 29, 7))
}

/// A slower desktop-class machine (ratio ≈ 1.5).
pub fn slow_workstation() -> NodeClass {
    NodeClass::new("slow-ws", OverheadProfile::new(40, 9, 60, 14))
}

/// A legacy machine with an expensive protocol stack (ratio ≈ 1.8, close to
/// the top of the published range).
pub fn legacy_workstation() -> NodeClass {
    NodeClass::new("legacy-ws", OverheadProfile::new(75, 18, 135, 33))
}

/// The standard four-class table used by most experiments.
pub fn standard_class_table() -> ClassTable {
    ClassTable::new(vec![
        fast_workstation(),
        midrange_workstation(),
        slow_workstation(),
        legacy_workstation(),
    ])
    .expect("non-empty class list")
}

/// A two-class (fast/slow) table matching the flavour of the paper's
/// Figure 1 example.
pub fn two_class_table() -> ClassTable {
    ClassTable::new(vec![fast_workstation(), legacy_workstation()]).expect("non-empty class list")
}

/// The exact node classes of the paper's Figure 1 (constant overheads:
/// fast = (1, 1), slow = (2, 3)).
pub fn figure1_class_table() -> ClassTable {
    ClassTable::new(vec![
        NodeClass::constant("figure1-fast", 1, 1),
        NodeClass::constant("figure1-slow", 2, 3),
    ])
    .expect("non-empty class list")
}

/// Default message size used by experiments when none is specified (4 KiB —
/// a typical control-message / small-collective payload).
pub fn default_message_size() -> MessageSize {
    MessageSize::from_kib(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_span_the_published_range() {
        let size = default_message_size();
        let table = standard_class_table();
        let mut ratios: Vec<f64> = table
            .classes()
            .iter()
            .map(|c| c.profile.ratio_at(size).unwrap())
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(*ratios.first().unwrap() >= 1.0);
        assert!(*ratios.first().unwrap() <= 1.2);
        assert!(*ratios.last().unwrap() >= 1.6);
        assert!(*ratios.last().unwrap() <= 1.9);
    }

    #[test]
    fn classes_are_consistently_ordered_by_speed() {
        // Faster classes must dominate slower ones at every message size the
        // experiments use, so mixed clusters never violate the model's
        // correlation assumption.
        let sizes = [
            MessageSize(64),
            MessageSize::from_kib(1),
            MessageSize::from_kib(4),
            MessageSize::from_kib(64),
            MessageSize::from_kib(1024),
        ];
        let table = standard_class_table();
        for size in sizes {
            let specs = table.specs_at(size).unwrap();
            for pair in specs.windows(2) {
                assert!(pair[0].send() <= pair[1].send(), "at {size}");
                assert!(pair[0].recv() <= pair[1].recv(), "at {size}");
            }
        }
    }

    #[test]
    fn figure1_table_matches_the_paper() {
        let specs = figure1_class_table().specs_at(MessageSize(0)).unwrap();
        assert_eq!(specs[0].send().raw(), 1);
        assert_eq!(specs[0].recv().raw(), 1);
        assert_eq!(specs[1].send().raw(), 2);
        assert_eq!(specs[1].recv().raw(), 3);
    }

    #[test]
    fn fast_and_legacy_are_roughly_an_order_of_magnitude_apart() {
        let size = default_message_size();
        let fast = fast_workstation().profile.at(size).unwrap();
        let legacy = legacy_workstation().profile.at(size).unwrap();
        let spread = legacy.send().as_f64() / fast.send().as_f64();
        assert!(spread > 5.0 && spread < 15.0, "spread = {spread}");
    }
}
