//! Streaming multicast traffic: seeded session arrival processes over a
//! shared cluster.
//!
//! The paper plans one multicast at a time; a multicast *service* sees a
//! continuous stream of overlapping sessions against one heterogeneous
//! cluster (cf. self-organizing overlay multicast, where sessions arrive,
//! live and leave). This module generates that stream deterministically:
//!
//! * [`NodePool`] — a concrete cluster: `counts[c]` numbered workstations of
//!   each class of a [`ClassTable`], evaluated at one message size.
//! * [`SessionRequest`] — one multicast session: arrival time, a source
//!   node, a destination group (all pool node ids), and an optional
//!   *patience* after which an unstarted session abandons (churn).
//! * [`TrafficPattern`] — the generator: an [`ArrivalProfile`] (Poisson or
//!   bursty), a [`GroupSizeDist`], optional per-class weights biasing both
//!   source and member selection, and an optional [`ChurnProfile`].
//!
//! Everything is seeded and deterministic: the same
//! `(pattern, pool, sessions, seed)` produces the identical request vector,
//! which is the contract the traffic engine's byte-identical
//! `TrafficReport` rests on.

use crate::error::WorkloadError;
use hnow_model::{ChunkProfile, ClassTable, MessageSize, NodeSpec, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A concrete shared cluster: numbered nodes drawn from a class table.
///
/// Node ids run `0..len()`, grouped by class in class-declaration order
/// (all class-0 nodes first, then class 1, …). Sessions reference these ids,
/// and the traffic engine serializes each node's work across sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePool {
    table: ClassTable,
    size: MessageSize,
    specs: Vec<NodeSpec>,
    class_of: Vec<usize>,
    by_class: Vec<Vec<usize>>,
}

impl NodePool {
    /// Materialises a pool with `counts[c]` nodes of class `c` at message
    /// size `size`. At least one node is required.
    pub fn new(
        table: ClassTable,
        size: MessageSize,
        counts: &[usize],
    ) -> Result<Self, WorkloadError> {
        if counts.len() != table.k() {
            return Err(WorkloadError::CountMismatch {
                got: counts.len(),
                expected: table.k(),
            });
        }
        if counts.iter().sum::<usize>() == 0 {
            return Err(WorkloadError::EmptyCluster);
        }
        let specs = table.specs_at(size)?;
        let mut class_of = Vec::new();
        let mut by_class = vec![Vec::new(); table.k()];
        for (c, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                by_class[c].push(class_of.len());
                class_of.push(c);
            }
        }
        Ok(NodePool {
            table,
            size,
            specs,
            class_of,
            by_class,
        })
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.class_of.len()
    }

    /// Whether the pool has no nodes (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.class_of.is_empty()
    }

    /// Number of classes `k`.
    pub fn k(&self) -> usize {
        self.table.k()
    }

    /// The class table the pool was built from.
    pub fn table(&self) -> &ClassTable {
        &self.table
    }

    /// The message size the class overheads were evaluated at.
    pub fn message_size(&self) -> MessageSize {
        self.size
    }

    /// Per-class overheads at the pool's message size.
    pub fn specs(&self) -> &[NodeSpec] {
        &self.specs
    }

    /// Class index of a pool node.
    pub fn class_of(&self, node: usize) -> usize {
        self.class_of[node]
    }

    /// Overheads of a pool node.
    pub fn spec_of_node(&self, node: usize) -> NodeSpec {
        self.specs[self.class_of[node]]
    }

    /// The node ids of one class, ascending.
    pub fn nodes_of_class(&self, class: usize) -> &[usize] {
        &self.by_class[class]
    }
}

/// One multicast session: who multicasts what to whom, starting when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Session id, unique and dense (`0..sessions` from the generator).
    pub id: u64,
    /// Arrival time of the session at the service.
    pub arrival: Time,
    /// Pool node id of the source.
    pub source: usize,
    /// Pool node ids of the destination group (distinct, source excluded).
    pub members: Vec<usize>,
    /// Churn: if the source cannot *start* serving the session by
    /// `arrival + patience` (because contention keeps it busy), the session
    /// leaves the system unserved.
    pub patience: Option<Time>,
    /// Streaming: chunk the payload into a train instead of one atomic
    /// send. `None` (and any profile with `chunks <= 1`) is the base
    /// model's atomic session; engines may also supply a run-wide default
    /// through their configuration.
    #[serde(default)]
    pub chunks: Option<ChunkProfile>,
}

impl SessionRequest {
    /// Number of destination nodes in the group.
    pub fn group_size(&self) -> usize {
        self.members.len()
    }
}

/// When sessions arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProfile {
    /// Poisson process: independent exponential inter-arrival gaps with the
    /// given mean (time units; rounded to the integer clock).
    Poisson {
        /// Mean inter-arrival gap in time units (> 0).
        mean_gap: f64,
    },
    /// Bursty load: `burst` sessions arrive simultaneously every `period`
    /// time units (flash crowds, synchronized collective phases).
    Bursty {
        /// Sessions per burst (≥ 1).
        burst: usize,
        /// Time between bursts.
        period: u64,
    },
}

/// How large each session's destination group is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupSizeDist {
    /// Every group has exactly this many destinations.
    Fixed(usize),
    /// Uniform over `min..=max` destinations.
    Uniform {
        /// Smallest group size (≥ 1).
        min: usize,
        /// Largest group size.
        max: usize,
    },
}

/// Session churn: a fraction of sessions arrive with finite patience and
/// leave unserved if contention delays their start too long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnProfile {
    /// Probability that a session has finite patience at all.
    pub impatient_fraction: f64,
    /// Mean patience of impatient sessions (exponentially distributed,
    /// rounded to the integer clock).
    pub mean_patience: f64,
}

/// A complete, seeded description of an offered traffic load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficPattern {
    /// Arrival process of the sessions.
    pub arrivals: ArrivalProfile,
    /// Distribution of destination-group sizes.
    pub group_size: GroupSizeDist,
    /// Optional per-class selection weights for sources and members; `None`
    /// selects uniformly over *nodes* (so bigger classes draw more
    /// traffic). Weights are relative and need not sum to one.
    pub class_weights: Option<Vec<f64>>,
    /// Optional churn (sessions with finite patience).
    pub churn: Option<ChurnProfile>,
}

impl TrafficPattern {
    /// A plain Poisson pattern: mean gap `mean_gap`, fixed group size,
    /// uniform node selection, no churn.
    pub fn poisson(mean_gap: f64, group: usize) -> Self {
        TrafficPattern {
            arrivals: ArrivalProfile::Poisson { mean_gap },
            group_size: GroupSizeDist::Fixed(group),
            class_weights: None,
            churn: None,
        }
    }

    /// Generates `sessions` requests over `pool`, deterministically per
    /// seed. Group sizes are clamped to `pool.len() - 1` (a group can never
    /// need more distinct destinations than the pool has besides the
    /// source).
    pub fn generate(
        &self,
        pool: &NodePool,
        sessions: usize,
        seed: u64,
    ) -> Result<Vec<SessionRequest>, WorkloadError> {
        self.validate(pool.k(), pool.len())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::with_capacity(sessions);
        let mut clock = 0u64;
        let mut used = vec![false; pool.len()];
        for id in 0..sessions as u64 {
            let arrival = self.sample_arrival(&mut rng, &mut clock, id);
            let group = self.sample_group(&mut rng).min(pool.len() - 1);

            used.fill(false);
            let source = self.pick_node(&mut rng, pool, &mut used);
            let members: Vec<usize> = (0..group)
                .map(|_| self.pick_node(&mut rng, pool, &mut used))
                .collect();

            let patience = self.sample_patience(&mut rng);
            requests.push(SessionRequest {
                id,
                arrival: Time::new(arrival),
                source,
                members,
                patience,
                chunks: None,
            });
        }
        Ok(requests)
    }

    /// Validates the pattern against a pool shape (`k` classes, `nodes`
    /// nodes). Shared with the sharded generator so the two enforce
    /// identical rules.
    pub(crate) fn validate(&self, k: usize, nodes: usize) -> Result<(), WorkloadError> {
        if nodes < 2 {
            return Err(WorkloadError::EmptyCluster);
        }
        if let Some(weights) = &self.class_weights {
            if weights.len() != k {
                return Err(WorkloadError::WeightMismatch {
                    got: weights.len(),
                    expected: k,
                });
            }
            if weights.iter().any(|w| *w < 0.0 || !w.is_finite())
                || !weights.iter().any(|w| *w > 0.0)
            {
                return Err(WorkloadError::DegenerateWeights);
            }
        }
        match self.group_size {
            GroupSizeDist::Fixed(n) if n == 0 => {
                return Err(WorkloadError::InvalidGroupSize { min: n, max: n });
            }
            GroupSizeDist::Uniform { min, max } if min == 0 || min > max => {
                return Err(WorkloadError::InvalidGroupSize { min, max });
            }
            _ => {}
        }
        match self.arrivals {
            ArrivalProfile::Poisson { mean_gap } if !(mean_gap.is_finite() && mean_gap > 0.0) => {
                return Err(WorkloadError::DegenerateArrivals);
            }
            ArrivalProfile::Bursty { burst: 0, .. } => {
                return Err(WorkloadError::DegenerateArrivals);
            }
            _ => {}
        }
        Ok(())
    }

    /// Samples session `id`'s arrival time (`clock` accumulates Poisson
    /// gaps across calls).
    pub(crate) fn sample_arrival(&self, rng: &mut StdRng, clock: &mut u64, id: u64) -> u64 {
        match self.arrivals {
            ArrivalProfile::Poisson { mean_gap } => {
                *clock += exponential(rng, mean_gap);
                *clock
            }
            ArrivalProfile::Bursty { burst, period } => period.saturating_mul(id / burst as u64),
        }
    }

    /// Samples a nominal (unclamped) destination-group size.
    pub(crate) fn sample_group(&self, rng: &mut StdRng) -> usize {
        match self.group_size {
            GroupSizeDist::Fixed(n) => n,
            GroupSizeDist::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }

    /// Samples a session's patience from the churn profile.
    pub(crate) fn sample_patience(&self, rng: &mut StdRng) -> Option<Time> {
        match self.churn {
            Some(churn) if rng.gen_bool(churn.impatient_fraction) => {
                Some(Time::new(exponential(rng, churn.mean_patience)))
            }
            _ => None,
        }
    }

    /// Picks one not-yet-used node (marking it used): by class weight when
    /// weights are configured, uniformly over unused nodes otherwise.
    fn pick_node(&self, rng: &mut StdRng, pool: &NodePool, used: &mut [bool]) -> usize {
        let free: Vec<usize> = (0..pool.len()).filter(|&v| !used[v]).collect();
        let node = pick_from(rng, self.class_weights.as_deref(), pool.k(), &free, |v| {
            pool.class_of(v)
        });
        used[node] = true;
        node
    }
}

/// Weighted (or uniform) draw over the `free` candidate nodes — the one
/// selection rule shared by [`TrafficPattern`] and the sharded generator.
/// With weights, each class's mass is `weight × free candidates of the
/// class` (so the class mix follows the configured bias while exhausted
/// classes drop out naturally), falling back to a uniform draw when every
/// positively-weighted class is exhausted. `free` must be non-empty. The
/// caller marks the returned node used.
pub(crate) fn pick_from(
    rng: &mut StdRng,
    weights: Option<&[f64]>,
    k: usize,
    free: &[usize],
    class_of: impl Fn(usize) -> usize,
) -> usize {
    debug_assert!(!free.is_empty(), "pick_from needs a free candidate");
    match weights {
        Some(weights) => {
            let mass: Vec<f64> = (0..k)
                .map(|c| {
                    let count = free.iter().filter(|&&v| class_of(v) == c).count();
                    weights[c] * count as f64
                })
                .collect();
            let total: f64 = mass.iter().sum();
            if total > 0.0 {
                let mut x = rng.next_f64() * total;
                // Skip zero-mass classes entirely, so even a float
                // fall-through (x outrunning the cumulative masses) lands
                // on a class that still has free candidates.
                let mut chosen = None;
                for (c, m) in mass.iter().enumerate() {
                    if *m <= 0.0 {
                        continue;
                    }
                    chosen = Some(c);
                    if x < *m {
                        break;
                    }
                    x -= m;
                }
                let class = chosen.expect("total > 0 implies a positive-mass class");
                let of_class: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&v| class_of(v) == class)
                    .collect();
                of_class[rng.gen_range(0..of_class.len())]
            } else {
                // Every positively-weighted class is exhausted: fall back
                // to uniform over whatever is left.
                free[rng.gen_range(0..free.len())]
            }
        }
        None => free[rng.gen_range(0..free.len())],
    }
}

/// Exponentially distributed integer with the given mean (inverse-CDF over
/// the generator's uniform), clamped to ≥ 0.
pub(crate) fn exponential(rng: &mut StdRng, mean: f64) -> u64 {
    let u = rng.next_f64();
    let x = -mean.max(0.0) * (1.0 - u).ln();
    if x.is_finite() && x > 0.0 {
        x.round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{default_message_size, two_class_table};

    fn pool() -> NodePool {
        NodePool::new(two_class_table(), default_message_size(), &[6, 4]).unwrap()
    }

    #[test]
    fn pool_numbers_nodes_by_class() {
        let pool = pool();
        assert_eq!(pool.len(), 10);
        assert_eq!(pool.k(), 2);
        assert_eq!(pool.nodes_of_class(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(pool.nodes_of_class(1), &[6, 7, 8, 9]);
        assert_eq!(pool.class_of(0), 0);
        assert_eq!(pool.class_of(9), 1);
        assert_eq!(pool.spec_of_node(7), pool.specs()[1]);
        assert!(!pool.is_empty());
    }

    #[test]
    fn pool_rejects_bad_shapes() {
        let table = two_class_table();
        assert!(matches!(
            NodePool::new(table.clone(), default_message_size(), &[1]),
            Err(WorkloadError::CountMismatch { .. })
        ));
        assert!(matches!(
            NodePool::new(table, default_message_size(), &[0, 0]),
            Err(WorkloadError::EmptyCluster)
        ));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let pool = pool();
        let pattern = TrafficPattern::poisson(8.0, 4);
        let a = pattern.generate(&pool, 50, 7).unwrap();
        let b = pattern.generate(&pool, 50, 7).unwrap();
        assert_eq!(a, b);
        let c = pattern.generate(&pool, 50, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sessions_are_well_formed() {
        let pool = pool();
        let pattern = TrafficPattern {
            arrivals: ArrivalProfile::Poisson { mean_gap: 5.0 },
            group_size: GroupSizeDist::Uniform { min: 2, max: 6 },
            class_weights: None,
            churn: Some(ChurnProfile {
                impatient_fraction: 0.5,
                mean_patience: 40.0,
            }),
        };
        let requests = pattern.generate(&pool, 200, 3).unwrap();
        assert_eq!(requests.len(), 200);
        let mut last_arrival = Time::ZERO;
        let mut impatient = 0;
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.arrival >= last_arrival, "arrivals are monotone");
            last_arrival = r.arrival;
            assert!((2..=6).contains(&r.group_size()));
            // Distinct members, source excluded.
            let mut all = r.members.clone();
            all.push(r.source);
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            assert_eq!(all.len(), before, "session {i} reuses a node");
            assert!(all.iter().all(|&v| v < pool.len()));
            impatient += usize::from(r.patience.is_some());
        }
        // ~50% impatient; wide tolerance, only guards against 0%/100%.
        assert!(impatient > 40 && impatient < 160, "impatient = {impatient}");
    }

    #[test]
    fn bursty_arrivals_come_in_waves() {
        let pool = pool();
        let pattern = TrafficPattern {
            arrivals: ArrivalProfile::Bursty {
                burst: 5,
                period: 100,
            },
            group_size: GroupSizeDist::Fixed(3),
            class_weights: None,
            churn: None,
        };
        let requests = pattern.generate(&pool, 12, 1).unwrap();
        let arrivals: Vec<u64> = requests.iter().map(|r| r.arrival.raw()).collect();
        assert_eq!(arrivals, [0, 0, 0, 0, 0, 100, 100, 100, 100, 100, 200, 200]);
    }

    #[test]
    fn class_weights_bias_selection() {
        let pool = pool();
        // All mass on the slow class (class 1, 4 nodes).
        let pattern = TrafficPattern {
            arrivals: ArrivalProfile::Poisson { mean_gap: 1.0 },
            group_size: GroupSizeDist::Fixed(3),
            class_weights: Some(vec![0.0, 1.0]),
            churn: None,
        };
        let requests = pattern.generate(&pool, 40, 11).unwrap();
        for r in &requests {
            // Source + 3 members fit entirely inside the 4 slow nodes.
            assert_eq!(pool.class_of(r.source), 1);
            assert!(r.members.iter().all(|&v| pool.class_of(v) == 1));
        }
        // Larger groups must spill into the zero-weighted class.
        let spill = TrafficPattern {
            group_size: GroupSizeDist::Fixed(6),
            ..pattern
        };
        let requests = spill.generate(&pool, 10, 11).unwrap();
        assert!(requests
            .iter()
            .any(|r| r.members.iter().any(|&v| pool.class_of(v) == 0)));
    }

    #[test]
    fn group_sizes_clamp_to_the_pool() {
        let pool = pool();
        let pattern = TrafficPattern::poisson(2.0, 50);
        let requests = pattern.generate(&pool, 5, 0).unwrap();
        assert!(requests.iter().all(|r| r.group_size() == pool.len() - 1));
    }

    #[test]
    fn degenerate_patterns_are_rejected() {
        let pool = pool();
        let bad_weights = TrafficPattern {
            class_weights: Some(vec![0.0, 0.0]),
            ..TrafficPattern::poisson(1.0, 2)
        };
        assert!(matches!(
            bad_weights.generate(&pool, 1, 0),
            Err(WorkloadError::DegenerateWeights)
        ));
        let short_weights = TrafficPattern {
            class_weights: Some(vec![1.0]),
            ..TrafficPattern::poisson(1.0, 2)
        };
        assert!(matches!(
            short_weights.generate(&pool, 1, 0),
            Err(WorkloadError::WeightMismatch { .. })
        ));
        let empty_group = TrafficPattern::poisson(1.0, 0);
        assert!(matches!(
            empty_group.generate(&pool, 1, 0),
            Err(WorkloadError::InvalidGroupSize { .. })
        ));
        let inverted = TrafficPattern {
            group_size: GroupSizeDist::Uniform { min: 5, max: 2 },
            ..TrafficPattern::poisson(1.0, 2)
        };
        assert!(matches!(
            inverted.generate(&pool, 1, 0),
            Err(WorkloadError::InvalidGroupSize { .. })
        ));
        let tiny_pool = NodePool::new(two_class_table(), default_message_size(), &[1, 0]).unwrap();
        assert!(matches!(
            TrafficPattern::poisson(1.0, 1).generate(&tiny_pool, 1, 0),
            Err(WorkloadError::EmptyCluster)
        ));
        for mean_gap in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    TrafficPattern::poisson(mean_gap, 2).generate(&pool, 1, 0),
                    Err(WorkloadError::DegenerateArrivals)
                ),
                "mean gap {mean_gap} must be rejected"
            );
        }
        let empty_burst = TrafficPattern {
            arrivals: ArrivalProfile::Bursty {
                burst: 0,
                period: 10,
            },
            ..TrafficPattern::poisson(1.0, 2)
        };
        assert!(matches!(
            empty_burst.generate(&pool, 1, 0),
            Err(WorkloadError::DegenerateArrivals)
        ));
    }
}
