//! # hnow-workload
//!
//! Cluster, scenario and parameter-sweep generators for the HNOW multicast
//! experiments.
//!
//! The paper's assumptions are grounded in measurements of real late-1990s
//! workstation clusters (receive-send ratios between 1.05 and 1.85, an order
//! of magnitude between the fastest and the slowest protocol stacks). We do
//! not have that hardware; [`profiles`] defines synthetic workstation
//! classes spanning those published ranges, [`cluster`] composes them into
//! limited-heterogeneity clusters, [`generator`] draws fully random and
//! bimodal clusters with seeds, [`scenario`] bundles reproducible experiment
//! inputs, [`sweep`] builds the parameter series the experiment harness
//! iterates over, [`traffic`] turns a cluster into a streaming
//! *service* workload: seeded arrival processes emitting thousands of
//! overlapping multicast session requests with churn, [`sharding`]
//! partitions one large pool into class-aware shards and generates traffic
//! with a controlled cross-shard fraction, [`hotspot`] layers a
//! deterministically shifting hot-spot phase schedule on top of a shard
//! partition (the control plane's adversarial workload), [`lossy`]
//! pairs a traffic pattern with the loss parameters the simulator's fault
//! model injects, and [`stream`] stamps a chunked streaming profile onto a
//! pattern's sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod error;
pub mod generator;
pub mod hotspot;
pub mod lossy;
pub mod profiles;
pub mod scenario;
pub mod sharding;
pub mod stream;
pub mod sweep;
pub mod traffic;

pub use cluster::{fast_slow_mix, ClusterSpec};
pub use error::WorkloadError;
pub use generator::{bimodal_cluster, RandomClusterConfig};
pub use hotspot::HotSpotPattern;
pub use lossy::LossyPattern;
pub use profiles::{
    default_message_size, fast_workstation, figure1_class_table, legacy_workstation,
    midrange_workstation, slow_workstation, standard_class_table, two_class_table,
};
pub use scenario::{ClusterKind, Scenario};
pub use sharding::{ShardMap, ShardedPattern};
pub use stream::StreamPattern;
pub use sweep::{Sweep, SweepPoint};
pub use traffic::{
    ArrivalProfile, ChurnProfile, GroupSizeDist, NodePool, SessionRequest, TrafficPattern,
};
