//! Class-aware shard partitions of a [`NodePool`] and cross-shard traffic
//! generation.
//!
//! The ROADMAP's service layer wants makespan and memory sub-linear in total
//! cluster size; the lever is splitting one large pool into *shards*, each
//! served by its own traffic engine, with sessions that span shards stitched
//! through designated gateway nodes (cf. hierarchical reliable multicast,
//! where local subtrees hang off relay nodes). This module provides the
//! workload half of that design:
//!
//! * [`ShardMap`] — a deterministic, class-aware partition of a pool:
//!   global node `g` lives in shard `g % shards`, so every class spreads
//!   evenly across shards and each shard is a smaller [`NodePool`] over the
//!   *same* class table with its own dense local numbering.
//! * [`ShardedPattern`] — a seeded traffic generator over the partition: a
//!   configurable fraction of sessions deliberately spans at least two
//!   shards (their members are scattered pool-wide), while the rest stay
//!   entirely inside the source's home shard. Requests use **global** node
//!   ids, so the same vector drives both the sharded cluster and an
//!   unsharded reference engine.
//!
//! Everything is deterministic per `(pool, shards, pattern, seed)` — the
//! foundation of the sharded service's byte-identical reports.

use crate::error::WorkloadError;
use crate::traffic::{pick_from, NodePool, SessionRequest, TrafficPattern};
use hnow_model::Time;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A class-aware partition of one [`NodePool`] into disjoint shards.
///
/// Global node `g` is assigned to shard `g % shards`. Because the global
/// numbering groups nodes by class, this round-robin spreads every class
/// evenly over the shards (shard class mixes differ by at most one node per
/// class) and guarantees every shard is non-empty whenever
/// `shards <= pool.len()`. Each shard is materialised as its own
/// [`NodePool`] over the same class table and message size, with local ids
/// `0..shard_len` grouped by class in ascending global order — the "seeded
/// node numbering" that makes shard-local planning and binding
/// deterministic.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: Vec<NodePool>,
    /// Global id → `(shard, local id)`.
    locate: Vec<(usize, usize)>,
    /// Per shard: local id → global id (ascending within each class block).
    globals: Vec<Vec<usize>>,
}

impl ShardMap {
    /// Partitions `pool` into `shards` non-empty shards.
    pub fn partition(pool: &NodePool, shards: usize) -> Result<Self, WorkloadError> {
        if shards == 0 || shards > pool.len() {
            return Err(WorkloadError::InvalidShardCount {
                shards,
                nodes: pool.len(),
            });
        }
        // Per-shard, per-class global-id lists, in ascending global order.
        let mut members: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); pool.k()]; shards];
        for g in 0..pool.len() {
            members[g % shards][pool.class_of(g)].push(g);
        }
        let mut pools = Vec::with_capacity(shards);
        let mut globals = Vec::with_capacity(shards);
        let mut locate = vec![(0usize, 0usize); pool.len()];
        for (s, by_class) in members.into_iter().enumerate() {
            let counts: Vec<usize> = by_class.iter().map(Vec::len).collect();
            // NodePool numbers its nodes by class in declaration order, which
            // is exactly the order of this concatenation.
            let flat: Vec<usize> = by_class.into_iter().flatten().collect();
            for (local, &g) in flat.iter().enumerate() {
                locate[g] = (s, local);
            }
            pools.push(NodePool::new(
                pool.table().clone(),
                pool.message_size(),
                &counts,
            )?);
            globals.push(flat);
        }
        Ok(ShardMap {
            shards: pools,
            locate,
            globals,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.locate.len()
    }

    /// The shard pools, indexed by shard id.
    pub fn shards(&self) -> &[NodePool] {
        &self.shards
    }

    /// One shard's pool.
    pub fn shard(&self, s: usize) -> &NodePool {
        &self.shards[s]
    }

    /// The shard that owns a global node id.
    pub fn shard_of(&self, global: usize) -> usize {
        self.locate[global].0
    }

    /// `(shard, local id)` of a global node id.
    pub fn locate(&self, global: usize) -> (usize, usize) {
        self.locate[global]
    }

    /// The global id of a shard-local node.
    pub fn global_of(&self, shard: usize, local: usize) -> usize {
        self.globals[shard][local]
    }

    /// All global ids of one shard, in local-id order.
    pub fn globals_of(&self, shard: usize) -> &[usize] {
        &self.globals[shard]
    }

    /// Class index of a global node id (classes are shared by all shards).
    pub fn class_of(&self, global: usize) -> usize {
        let (s, l) = self.locate[global];
        self.shards[s].class_of(l)
    }

    /// Whether a session (global ids) spans more than the source's shard.
    pub fn is_cross_shard(&self, request: &SessionRequest) -> bool {
        let home = self.shard_of(request.source);
        request.members.iter().any(|&m| self.shard_of(m) != home)
    }

    /// Returns a new map with node `global` reassigned to `to_shard` and
    /// every other assignment unchanged.
    ///
    /// The map is rebuilt from the modified assignment with exactly the
    /// [`partition`](ShardMap::partition) construction — per-shard class
    /// blocks in ascending global order — so local numberings stay
    /// canonical and migrating a node back restores a structurally
    /// identical map (the rebalancer's flap-free guarantee). Rejected with
    /// [`WorkloadError::InvalidMigration`] when the node or shard does not
    /// exist, the move is a no-op, or it would empty the source shard.
    pub fn migrate(&self, global: usize, to_shard: usize) -> Result<ShardMap, WorkloadError> {
        let nodes = self.num_nodes();
        let invalid = || WorkloadError::InvalidMigration { global, to_shard };
        if global >= nodes || to_shard >= self.num_shards() {
            return Err(invalid());
        }
        let from = self.shard_of(global);
        if from == to_shard || self.globals[from].len() <= 1 {
            return Err(invalid());
        }
        let template = &self.shards[0];
        let k = template.k();
        let mut members: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); k]; self.num_shards()];
        for g in 0..nodes {
            let s = if g == global {
                to_shard
            } else {
                self.shard_of(g)
            };
            members[s][self.class_of(g)].push(g);
        }
        let mut pools = Vec::with_capacity(self.num_shards());
        let mut globals = Vec::with_capacity(self.num_shards());
        let mut locate = vec![(0usize, 0usize); nodes];
        for (s, by_class) in members.into_iter().enumerate() {
            let counts: Vec<usize> = by_class.iter().map(Vec::len).collect();
            let flat: Vec<usize> = by_class.into_iter().flatten().collect();
            for (local, &g) in flat.iter().enumerate() {
                locate[g] = (s, local);
            }
            pools.push(NodePool::new(
                template.table().clone(),
                template.message_size(),
                &counts,
            )?);
            globals.push(flat);
        }
        Ok(ShardMap {
            shards: pools,
            locate,
            globals,
        })
    }
}

/// A seeded traffic load over a [`ShardMap`] with an explicit cross-shard
/// fraction.
///
/// The base pattern supplies arrivals, group sizes, per-class weights and
/// churn ([`TrafficPattern`] semantics); `cross_shard_fraction` is the
/// probability that a session's members are scattered across the whole pool
/// — with at least one member guaranteed outside the source's home shard —
/// instead of staying inside it. Generated requests carry **global** node
/// ids.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPattern {
    /// Arrivals, group sizes, class weights and churn of the offered load.
    pub base: TrafficPattern,
    /// Probability in `[0, 1]` that a session spans at least two shards.
    pub cross_shard_fraction: f64,
}

impl ShardedPattern {
    /// A plain Poisson sharded pattern (uniform node selection, no churn).
    pub fn poisson(mean_gap: f64, group: usize, cross_shard_fraction: f64) -> Self {
        ShardedPattern {
            base: TrafficPattern::poisson(mean_gap, group),
            cross_shard_fraction,
        }
    }

    /// Generates `sessions` requests over the partition, deterministically
    /// per seed.
    ///
    /// Intra-shard sessions clamp their group size to the home shard's
    /// remaining capacity; cross-shard sessions clamp to the whole pool and
    /// always place at least one member outside the home shard (a session
    /// needs a group of at least one for that, so single-member shards with
    /// a whole-pool group may exceed the nominal fraction slightly).
    pub fn generate(
        &self,
        map: &ShardMap,
        sessions: usize,
        seed: u64,
    ) -> Result<Vec<SessionRequest>, WorkloadError> {
        if !(self.cross_shard_fraction.is_finite()
            && (0.0..=1.0).contains(&self.cross_shard_fraction))
        {
            return Err(WorkloadError::InvalidFraction);
        }
        let pool_len = map.num_nodes();
        self.base.validate(map.shard(0).k(), pool_len)?;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::with_capacity(sessions);
        let mut clock = 0u64;
        let mut used = vec![false; pool_len];
        for id in 0..sessions as u64 {
            let arrival = self.base.sample_arrival(&mut rng, &mut clock, id);
            let nominal = self.base.sample_group(&mut rng);
            let cross = map.num_shards() > 1 && rng.next_f64() < self.cross_shard_fraction;

            used.fill(false);
            let source = self.pick(&mut rng, map, &mut used, None);
            let home = map.shard_of(source);
            let members: Vec<usize> = if cross {
                let group = nominal.min(pool_len - 1);
                (0..group)
                    .map(|i| {
                        // The first member is forced off the home shard so
                        // the session genuinely spans a gateway.
                        let exclude = if i == 0 { Some(home) } else { None };
                        self.pick_excluding(&mut rng, map, &mut used, exclude)
                    })
                    .collect()
            } else {
                let group = nominal.min(map.shard(home).len() - 1);
                (0..group)
                    .map(|_| self.pick(&mut rng, map, &mut used, Some(home)))
                    .collect()
            };

            let patience = self.base.sample_patience(&mut rng);
            requests.push(SessionRequest {
                id,
                arrival: Time::new(arrival),
                source,
                members,
                patience,
                chunks: None,
            });
        }
        Ok(requests)
    }

    /// Picks one unused node (marking it used), optionally restricted to one
    /// shard, honouring the base pattern's class weights.
    fn pick(
        &self,
        rng: &mut StdRng,
        map: &ShardMap,
        used: &mut [bool],
        within: Option<usize>,
    ) -> usize {
        let candidate = |g: usize| within.is_none_or(|s| map.shard_of(g) == s);
        self.pick_where(rng, map, used, candidate)
    }

    /// Picks one unused node outside the given shard (falling back to the
    /// whole pool if everything outside is already used).
    fn pick_excluding(
        &self,
        rng: &mut StdRng,
        map: &ShardMap,
        used: &mut [bool],
        exclude: Option<usize>,
    ) -> usize {
        if let Some(s) = exclude {
            let any_free = (0..used.len()).any(|g| !used[g] && map.shard_of(g) != s);
            if any_free {
                return self.pick_where(rng, map, used, |g| map.shard_of(g) != s);
            }
        }
        self.pick_where(rng, map, used, |_| true)
    }

    /// Weighted (or uniform) draw (via the shared [`pick_from`] rule) over
    /// the unused nodes satisfying `candidate`; at least one such node must
    /// remain.
    fn pick_where(
        &self,
        rng: &mut StdRng,
        map: &ShardMap,
        used: &mut [bool],
        candidate: impl Fn(usize) -> bool,
    ) -> usize {
        let free: Vec<usize> = (0..used.len())
            .filter(|&g| !used[g] && candidate(g))
            .collect();
        let node = pick_from(
            rng,
            self.base.class_weights.as_deref(),
            map.shard(0).k(),
            &free,
            |g| map.class_of(g),
        );
        used[node] = true;
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{default_message_size, two_class_table};

    fn pool() -> NodePool {
        NodePool::new(two_class_table(), default_message_size(), &[12, 8]).unwrap()
    }

    #[test]
    fn partition_is_class_aware_and_covers_the_pool() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        assert_eq!(map.num_shards(), 4);
        assert_eq!(map.num_nodes(), pool.len());
        let total: usize = map.shards().iter().map(NodePool::len).sum();
        assert_eq!(total, pool.len());
        // Every class spreads across shards within one node of even.
        for c in 0..pool.k() {
            let counts: Vec<usize> = (0..4)
                .map(|s| map.shard(s).nodes_of_class(c).len())
                .collect();
            let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
            assert!(max - min <= 1, "class {c} split unevenly: {counts:?}");
        }
        // locate/global_of are inverse bijections preserving class.
        for g in 0..pool.len() {
            let (s, l) = map.locate(g);
            assert_eq!(map.global_of(s, l), g);
            assert_eq!(map.shard_of(g), s);
            assert_eq!(map.shard(s).class_of(l), pool.class_of(g));
        }
        // Local numbering is ascending-global within each class block.
        for s in 0..4 {
            let globals = map.globals_of(s);
            for c in 0..pool.k() {
                let block: Vec<usize> = map
                    .shard(s)
                    .nodes_of_class(c)
                    .iter()
                    .map(|&l| globals[l])
                    .collect();
                assert!(block.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    /// Checks every structural invariant the partitioner guarantees:
    /// locate/global_of are inverse bijections, classes are preserved, every
    /// shard is non-empty, and each shard's class blocks ascend by global id.
    fn assert_map_invariants(map: &ShardMap, pool: &NodePool) {
        assert_eq!(map.num_nodes(), pool.len());
        let total: usize = map.shards().iter().map(NodePool::len).sum();
        assert_eq!(total, pool.len());
        for g in 0..pool.len() {
            let (s, l) = map.locate(g);
            assert_eq!(map.global_of(s, l), g, "locate/global_of must invert");
            assert_eq!(map.shard_of(g), s);
            assert_eq!(map.shard(s).class_of(l), pool.class_of(g));
        }
        for s in 0..map.num_shards() {
            assert_ne!(map.shard(s).len(), 0, "shard {s} emptied");
            let globals = map.globals_of(s);
            assert_eq!(globals.len(), map.shard(s).len());
            for c in 0..pool.k() {
                let block: Vec<usize> = map
                    .shard(s)
                    .nodes_of_class(c)
                    .iter()
                    .map(|&l| globals[l])
                    .collect();
                assert!(
                    block.windows(2).all(|w| w[0] < w[1]),
                    "shard {s} class {c} block not ascending"
                );
            }
        }
    }

    /// Structural equality of two maps through the public accessors (the
    /// map holds no PartialEq-able state of its own).
    fn assert_maps_identical(a: &ShardMap, b: &ShardMap) {
        assert_eq!(a.num_shards(), b.num_shards());
        assert_eq!(a.num_nodes(), b.num_nodes());
        for g in 0..a.num_nodes() {
            assert_eq!(a.locate(g), b.locate(g));
        }
        for s in 0..a.num_shards() {
            assert_eq!(a.globals_of(s), b.globals_of(s));
        }
    }

    #[test]
    fn migration_preserves_every_partition_invariant() {
        // Exhaustive property sweep: every node to every foreign shard.
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        for g in 0..pool.len() {
            for to in 0..4 {
                if to == map.shard_of(g) {
                    assert!(matches!(
                        map.migrate(g, to),
                        Err(WorkloadError::InvalidMigration { .. })
                    ));
                    continue;
                }
                let moved = map.migrate(g, to).unwrap();
                assert_map_invariants(&moved, &pool);
                assert_eq!(moved.shard_of(g), to);
                assert_eq!(moved.class_of(g), map.class_of(g));
                // Chained migrations stay sound too.
                let back = moved.migrate(g, map.shard_of(g)).unwrap();
                assert_map_invariants(&back, &pool);
                assert_maps_identical(&back, &map);
            }
        }
    }

    #[test]
    fn migration_rejects_invalid_moves() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        assert!(matches!(
            map.migrate(pool.len(), 0),
            Err(WorkloadError::InvalidMigration { .. })
        ));
        assert!(matches!(
            map.migrate(0, 4),
            Err(WorkloadError::InvalidMigration { .. })
        ));
        // Draining a singleton shard is refused.
        let singletons = ShardMap::partition(&pool, pool.len()).unwrap();
        assert!(matches!(
            singletons.migrate(0, 1),
            Err(WorkloadError::InvalidMigration { .. })
        ));
        let err = map.migrate(0, 99).unwrap_err();
        assert!(err.to_string().contains("cannot migrate"));
    }

    #[test]
    fn partition_rejects_bad_shard_counts() {
        let pool = pool();
        assert!(matches!(
            ShardMap::partition(&pool, 0),
            Err(WorkloadError::InvalidShardCount { .. })
        ));
        assert!(matches!(
            ShardMap::partition(&pool, pool.len() + 1),
            Err(WorkloadError::InvalidShardCount { .. })
        ));
        // One shard per node is legal: 20 singleton shards.
        let fine = ShardMap::partition(&pool, pool.len()).unwrap();
        assert!(fine.shards().iter().all(|s| s.len() == 1));
    }

    #[test]
    fn generation_is_deterministic_and_respects_the_fraction() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let pattern = ShardedPattern::poisson(8.0, 4, 0.3);
        let a = pattern.generate(&map, 200, 7).unwrap();
        let b = pattern.generate(&map, 200, 7).unwrap();
        assert_eq!(a, b);
        let c = pattern.generate(&map, 200, 8).unwrap();
        assert_ne!(a, c);

        let cross = a.iter().filter(|r| map.is_cross_shard(r)).count();
        // ~30% with wide tolerance; guards against 0%/100%.
        assert!((30..=90).contains(&cross), "cross sessions: {cross}");
        for r in &a {
            let home = map.shard_of(r.source);
            if map.is_cross_shard(r) {
                assert!(r.members.iter().any(|&m| map.shard_of(m) != home));
            } else {
                assert!(r.members.iter().all(|&m| map.shard_of(m) == home));
                assert!(r.group_size() < map.shard(home).len());
            }
            // Distinct participants, ids in range.
            let mut all = r.members.clone();
            all.push(r.source);
            all.sort_unstable();
            let n = all.len();
            all.dedup();
            assert_eq!(all.len(), n);
            assert!(all.iter().all(|&v| v < pool.len()));
        }
    }

    #[test]
    fn extreme_fractions_pin_the_mix() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let intra = ShardedPattern::poisson(5.0, 3, 0.0)
            .generate(&map, 80, 3)
            .unwrap();
        assert!(intra.iter().all(|r| !map.is_cross_shard(r)));
        let cross = ShardedPattern::poisson(5.0, 3, 1.0)
            .generate(&map, 80, 3)
            .unwrap();
        assert!(cross.iter().all(|r| map.is_cross_shard(r)));
    }

    #[test]
    fn single_shard_generates_plain_traffic() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 1).unwrap();
        let requests = ShardedPattern::poisson(5.0, 4, 0.9)
            .generate(&map, 40, 11)
            .unwrap();
        // With one shard nothing can cross, regardless of the fraction.
        assert!(requests.iter().all(|r| !map.is_cross_shard(r)));
    }

    #[test]
    fn class_weights_bias_sharded_selection() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        let pattern = ShardedPattern {
            base: TrafficPattern {
                class_weights: Some(vec![0.0, 1.0]),
                ..TrafficPattern::poisson(2.0, 2)
            },
            cross_shard_fraction: 0.5,
        };
        let requests = pattern.generate(&map, 60, 13).unwrap();
        for r in &requests {
            assert_eq!(pool.class_of(r.source), 1, "all mass on the slow class");
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ShardedPattern::poisson(5.0, 3, bad).generate(&map, 1, 0),
                Err(WorkloadError::InvalidFraction)
            ));
        }
        assert!(matches!(
            ShardedPattern::poisson(0.0, 3, 0.5).generate(&map, 1, 0),
            Err(WorkloadError::DegenerateArrivals)
        ));
        assert!(matches!(
            ShardedPattern::poisson(5.0, 0, 0.5).generate(&map, 1, 0),
            Err(WorkloadError::InvalidGroupSize { .. })
        ));
        let bad_weights = ShardedPattern {
            base: TrafficPattern {
                class_weights: Some(vec![0.0, 0.0]),
                ..TrafficPattern::poisson(1.0, 2)
            },
            cross_shard_fraction: 0.0,
        };
        assert!(matches!(
            bad_weights.generate(&map, 1, 0),
            Err(WorkloadError::DegenerateWeights)
        ));
    }
}
