//! Streaming traffic: a [`TrafficPattern`] whose sessions carry a chunk
//! train instead of one atomic payload.
//!
//! The request *stream* (arrivals, sources, groups, churn) is exactly the
//! wrapped pattern's — [`StreamPattern::generate`] delegates to it and then
//! stamps the same [`ChunkProfile`] onto every emitted request — so a
//! streaming scenario differs from its atomic twin only in how each
//! session's payload moves through the tree. That makes pipelined vs
//! sequential (and chunked vs atomic) comparisons claims about the chunk
//! machinery, never about luck in the request draw.

use crate::error::WorkloadError;
use crate::traffic::{NodePool, SessionRequest, TrafficPattern};
use hnow_model::ChunkProfile;
use serde::{Deserialize, Serialize};

/// A traffic pattern whose sessions stream chunk trains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamPattern {
    /// The offered-load pattern (arrivals, group sizes, churn).
    pub base: TrafficPattern,
    /// Chunks per session (must be at least 1; `1` degenerates to the
    /// atomic path byte-for-byte).
    pub chunks: u32,
    /// Release interval between consecutive chunks, in time units.
    pub interval: u64,
    /// Optional per-chunk playout deadline, in time units past each chunk's
    /// release.
    pub deadline: Option<u64>,
    /// Pipelined train (`true`, the streaming default) or sequential
    /// one-shot re-sends (`false`, the E14 baseline).
    pub pipelined: bool,
}

impl StreamPattern {
    /// A pipelined stream over `base`: `chunks` chunks released every
    /// `interval` ticks, no deadline.
    pub fn pipelined(base: TrafficPattern, chunks: u32, interval: u64) -> Self {
        StreamPattern {
            base,
            chunks,
            interval,
            deadline: None,
            pipelined: true,
        }
    }

    /// The per-session chunk profile this pattern stamps onto requests.
    pub fn profile(&self) -> ChunkProfile {
        ChunkProfile {
            chunks: self.chunks.max(1),
            interval: self.interval,
            deadline: self.deadline,
            pipelined: self.pipelined,
        }
    }

    /// Generates the wrapped pattern's request stream with every request
    /// carrying this pattern's chunk profile.
    pub fn generate(
        &self,
        pool: &NodePool,
        sessions: usize,
        seed: u64,
    ) -> Result<Vec<SessionRequest>, WorkloadError> {
        if self.chunks == 0 {
            return Err(WorkloadError::DegenerateChunks);
        }
        let profile = self.profile();
        let mut requests = self.base.generate(pool, sessions, seed)?;
        for request in &mut requests {
            request.chunks = Some(profile);
        }
        Ok(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{default_message_size, two_class_table};

    #[test]
    fn generation_matches_the_wrapped_pattern_modulo_chunks() {
        let pool = NodePool::new(two_class_table(), default_message_size(), &[6, 4]).unwrap();
        let base = TrafficPattern::poisson(8.0, 4);
        let stream = StreamPattern::pipelined(base.clone(), 8, 25);
        let chunked = stream.generate(&pool, 40, 7).unwrap();
        let atomic = base.generate(&pool, 40, 7).unwrap();
        assert_eq!(chunked.len(), atomic.len());
        for (c, a) in chunked.iter().zip(&atomic) {
            assert_eq!(c.chunks, Some(ChunkProfile::new(8, 25)));
            let mut stripped = c.clone();
            stripped.chunks = None;
            assert_eq!(&stripped, a, "chunking must not perturb the offered stream");
        }
    }

    #[test]
    fn zero_chunks_is_rejected() {
        let pool = NodePool::new(two_class_table(), default_message_size(), &[4, 2]).unwrap();
        let mut stream = StreamPattern::pipelined(TrafficPattern::poisson(8.0, 3), 4, 10);
        stream.chunks = 0;
        assert_eq!(
            stream.generate(&pool, 4, 1).unwrap_err(),
            WorkloadError::DegenerateChunks
        );
    }

    #[test]
    fn sequential_and_deadline_flow_into_the_profile() {
        let mut stream = StreamPattern::pipelined(TrafficPattern::poisson(8.0, 3), 4, 10);
        stream.pipelined = false;
        stream.deadline = Some(120);
        let p = stream.profile();
        assert!(!p.pipelined);
        assert_eq!(p.deadline, Some(120));
        assert_eq!(p, ChunkProfile::new(4, 10).with_deadline(120).sequential());
    }
}
