//! Deterministic cluster construction.

use crate::error::WorkloadError;
use hnow_model::{ClassTable, MessageSize, MulticastSet, TypedMulticast};

/// Description of a limited-heterogeneity cluster: how many destinations of
/// each class participate in the multicast and which class the source
/// belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// The workstation classes present in the cluster.
    pub table: ClassTable,
    /// Class index of the source node.
    pub source_class: usize,
    /// Number of destination nodes per class.
    pub counts: Vec<usize>,
}

impl ClusterSpec {
    /// Creates a cluster description.
    pub fn new(table: ClassTable, source_class: usize, counts: Vec<usize>) -> Self {
        ClusterSpec {
            table,
            source_class,
            counts,
        }
    }

    /// Total number of destinations.
    pub fn num_destinations(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Materialises the cluster at a message size as a typed instance
    /// (the form the Theorem 2 dynamic program consumes).
    pub fn typed(&self, size: MessageSize) -> Result<TypedMulticast, WorkloadError> {
        TypedMulticast::from_classes(&self.table, size, self.source_class, self.counts.clone())
            .map_err(WorkloadError::from)
    }

    /// Materialises the cluster at a message size as an explicit multicast
    /// set.
    pub fn multicast_set(&self, size: MessageSize) -> Result<MulticastSet, WorkloadError> {
        Ok(self.typed(size)?.to_multicast_set()?)
    }
}

/// A fast/slow mix: `n` destinations of which a fraction `slow_fraction` are
/// of the slow class, the rest of the fast class. The source is fast unless
/// `slow_source` is set.
pub fn fast_slow_mix(
    table: &ClassTable,
    fast_class: usize,
    slow_class: usize,
    n: usize,
    slow_fraction: f64,
    slow_source: bool,
) -> ClusterSpec {
    let slow_count = ((n as f64) * slow_fraction.clamp(0.0, 1.0)).round() as usize;
    let slow_count = slow_count.min(n);
    let mut counts = vec![0usize; table.k()];
    counts[fast_class] += n - slow_count;
    counts[slow_class] += slow_count;
    ClusterSpec::new(
        table.clone(),
        if slow_source { slow_class } else { fast_class },
        counts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{default_message_size, figure1_class_table, two_class_table};

    #[test]
    fn figure1_cluster_round_trips() {
        let spec = ClusterSpec::new(figure1_class_table(), 1, vec![3, 1]);
        assert_eq!(spec.num_destinations(), 4);
        let set = spec.multicast_set(MessageSize(0)).unwrap();
        assert_eq!(set.num_destinations(), 4);
        assert_eq!(set.source().send().raw(), 2);
        let typed = spec.typed(MessageSize(0)).unwrap();
        assert_eq!(typed.counts(), &[3, 1]);
    }

    #[test]
    fn fast_slow_mix_counts() {
        let table = two_class_table();
        let spec = fast_slow_mix(&table, 0, 1, 10, 0.3, false);
        assert_eq!(spec.counts, vec![7, 3]);
        assert_eq!(spec.source_class, 0);
        let all_slow = fast_slow_mix(&table, 0, 1, 8, 1.5, true);
        assert_eq!(all_slow.counts, vec![0, 8]);
        assert_eq!(all_slow.source_class, 1);
        let none_slow = fast_slow_mix(&table, 0, 1, 8, 0.0, false);
        assert_eq!(none_slow.counts, vec![8, 0]);
    }

    #[test]
    fn materialised_sets_respect_the_model_assumptions() {
        let table = two_class_table();
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let spec = fast_slow_mix(&table, 0, 1, 16, frac, false);
            let set = spec.multicast_set(default_message_size()).unwrap();
            assert_eq!(set.num_destinations(), 16);
            assert!(set.alpha_max() >= set.alpha_min());
        }
    }
}
