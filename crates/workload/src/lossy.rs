//! Lossy traffic: a [`TrafficPattern`] paired with the loss parameters the
//! simulator's fault model injects.
//!
//! The request stream itself is unchanged — loss happens at delivery time
//! in the simulator, not at generation time — so [`LossyPattern::generate`]
//! delegates to the wrapped pattern verbatim. The wrapper exists so a
//! *scenario* ("bursty arrivals over a lossy WAN at 5%") is one seeded,
//! serializable value that workload sweeps and experiments can pass around;
//! `hnow-sim` lifts the loss fields into its `LossProfile` (this crate
//! sits below the simulator in the dependency order, so the conversion
//! lives there).

use crate::error::WorkloadError;
use crate::traffic::{NodePool, SessionRequest, TrafficPattern};
use serde::{Deserialize, Serialize};

/// A traffic pattern over a lossy network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyPattern {
    /// The offered-load pattern (arrivals, group sizes, churn).
    pub base: TrafficPattern,
    /// Base iid probability that a delivery is lost.
    pub rate: f64,
    /// Optional per-receiver-class overrides of the base rate.
    pub per_class: Option<Vec<f64>>,
    /// Probability that a `(session, sender, time bucket)` window bursts;
    /// 0 disables burst windows.
    pub burst_frequency: f64,
    /// Loss probability inside a burst window.
    pub burst_rate: f64,
    /// Width of a burst window in time units.
    pub burst_bucket: u64,
    /// Repair retransmissions allowed per receiver before giving up.
    pub max_retries: u32,
    /// Base retry backoff in time units.
    pub backoff: u64,
    /// Optional recovery-liveness bound: once a receiver first misses a
    /// delivery, repair attempts issued more than this many time units
    /// later give the receiver up instead of retransmitting.
    pub repair_deadline: Option<u64>,
    /// Seed of the simulator's keyed loss draws (independent of the
    /// request-generation seed passed to [`LossyPattern::generate`]).
    pub fault_seed: u64,
}

impl LossyPattern {
    /// A plain iid-loss wrapper around `base`: the given loss rate, no
    /// class overrides, no bursts, 8 retries, backoff 4.
    pub fn iid(base: TrafficPattern, rate: f64, fault_seed: u64) -> Self {
        LossyPattern {
            base,
            rate,
            per_class: None,
            burst_frequency: 0.0,
            burst_rate: 0.0,
            burst_bucket: 64,
            max_retries: 8,
            backoff: 4,
            repair_deadline: None,
            fault_seed,
        }
    }

    /// Generates the request stream of the wrapped pattern (loss does not
    /// alter what is offered, only what arrives).
    pub fn generate(
        &self,
        pool: &NodePool,
        sessions: usize,
        seed: u64,
    ) -> Result<Vec<SessionRequest>, WorkloadError> {
        self.base.generate(pool, sessions, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{default_message_size, two_class_table};

    #[test]
    fn generation_matches_the_wrapped_pattern() {
        let pool = NodePool::new(two_class_table(), default_message_size(), &[6, 4]).unwrap();
        let base = TrafficPattern::poisson(8.0, 4);
        let lossy = LossyPattern::iid(base.clone(), 0.05, 99);
        assert_eq!(
            lossy.generate(&pool, 40, 7).unwrap(),
            base.generate(&pool, 40, 7).unwrap(),
            "loss parameters must not perturb the offered stream"
        );
        assert_eq!(lossy.rate, 0.05);
        assert_eq!(lossy.fault_seed, 99);
    }
}
