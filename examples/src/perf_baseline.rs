//! Runs the JSON perf-baseline harness and writes `BENCH_core.json`.
//!
//! Usage:
//!
//! ```text
//! perf_baseline [--quick] [--out PATH]
//! ```
//!
//! `--quick` runs the tiny CI smoke grid (sub-second); the default is the
//! full trajectory grid. `--out` overrides the output path (default
//! `BENCH_core.json` in the current directory). The report is also
//! summarised on stdout, one line per case.

use hnow_bench::baseline::{run, BaselineMode};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut mode = BaselineMode::Full;
    let mut out = String::from("BENCH_core.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => mode = BaselineMode::Quick,
            "--full" => mode = BaselineMode::Full,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_baseline [--quick|--full] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run(mode);
    for case in &report.cases {
        println!(
            "{:<28} size {:>5}  min {:>12} ns  median {:>12} ns  mean {:>12} ns",
            case.name, case.size, case.min_ns, case.median_ns, case.mean_ns
        );
    }
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("failed to serialize report: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} cases to {out}", report.cases.len());
    ExitCode::SUCCESS
}
