//! Runs the JSON perf-baseline harness and writes `BENCH_core.json`.
//!
//! Usage:
//!
//! ```text
//! perf_baseline [--quick] [--out PATH] [--compare OLD.json] [--gate-factor F]
//! ```
//!
//! `--quick` runs the tiny CI smoke grid (sub-second); the default is the
//! full trajectory grid. `--out` overrides the output path (default
//! `BENCH_core.json` in the current directory). The report is also
//! summarised on stdout, one line per case.
//!
//! `--compare OLD.json` additionally diffs the fresh report against a
//! previously written one, prints a per-entry delta table, and exits
//! non-zero if any `dp_build` entry regressed by more than the gate factor
//! (default 3×, override with `--gate-factor`). Entries present on only one
//! side inform but never gate, so the quick CI grid can be compared against
//! a checked-in full-grid trajectory point. This is the engine of the CI
//! `perf-gate` job and works identically for local A/B runs.

use hnow_bench::baseline::{compare, render_comparison, run, BaselineMode, BaselineReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut mode = BaselineMode::Full;
    let mut out = String::from("BENCH_core.json");
    let mut compare_path: Option<String> = None;
    let mut gate_factor = 3.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => mode = BaselineMode::Quick,
            "--full" => mode = BaselineMode::Full,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match args.next() {
                Some(path) => compare_path = Some(path),
                None => {
                    eprintln!("--compare requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--gate-factor" => match args.next().and_then(|f| f.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => gate_factor = f,
                _ => {
                    eprintln!("--gate-factor requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_baseline [--quick|--full] [--out PATH] \
                     [--compare OLD.json] [--gate-factor F]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run(mode);
    for case in &report.cases {
        println!(
            "{:<28} size {:>5}  min {:>12} ns  median {:>12} ns  mean {:>12} ns",
            case.name, case.size, case.min_ns, case.median_ns, case.mean_ns
        );
    }
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("failed to serialize report: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} cases to {out}", report.cases.len());

    if let Some(old_path) = compare_path {
        let old: BaselineReport = match std::fs::read_to_string(&old_path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
        {
            Ok(old) => old,
            Err(err) => {
                eprintln!("failed to load {old_path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let comparison = compare(&old, &report, "dp_build", gate_factor);
        println!("\ncomparison against {old_path} (gate: dp_build > {gate_factor}x):");
        print!("{}", render_comparison(&comparison));
        if !comparison.passed() {
            eprintln!(
                "perf gate FAILED: {} regression(s)",
                comparison.regressions.len()
            );
            return ExitCode::FAILURE;
        }
        println!("perf gate passed");
    }
    ExitCode::SUCCESS
}
