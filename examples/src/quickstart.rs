//! Quickstart: plan a multicast on a small heterogeneous cluster through
//! the unified planner facade, print the schedule tree, its timing, and an
//! execution Gantt chart.
//!
//! Run with `cargo run -p hnow-examples --bin quickstart`.

use hnow_core::planner::{self, PlanRequest};
use hnow_core::stats;
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec};
use hnow_sim::execute;

fn main() {
    // A nine-node cluster: one fast source, five fast destinations, three
    // slower legacy machines. Overheads are in abstract time units (think
    // tens of microseconds); the network latency is 2 units.
    let fast = NodeSpec::new(3, 4);
    let slow = NodeSpec::new(9, 15);
    let set = MulticastSet::new(fast, vec![fast, fast, fast, fast, fast, slow, slow, slow])
        .expect("valid multicast set");
    let net = NetParams::new(2);

    println!("cluster: {set}");
    println!("network: {net}");
    println!(
        "receive-send ratios: alpha_min = {:.2}, alpha_max = {:.2}, beta = {}",
        set.alpha_min(),
        set.alpha_max(),
        set.beta()
    );
    println!();

    // Plan with the paper's greedy algorithm plus the leaf refinement. All
    // planners answer the same request shape; see `compare_planners` for
    // the full registry.
    let request = PlanRequest::new(set.clone(), net);
    let plan = planner::find("greedy+leaf")
        .expect("the refined greedy planner is registered")
        .plan(&request)
        .expect("planning succeeds");
    println!("greedy schedule tree (children listed in delivery order):");
    print!("{}", plan.tree);
    println!();

    let s = stats(&plan.tree, &set, net).expect("complete schedule");
    println!("reception completion time R_T = {}", s.reception_completion);
    println!("delivery  completion time D_T = {}", s.delivery_completion);
    println!(
        "tree depth = {}, source fan-out = {}",
        s.depth, s.source_fanout
    );
    println!("layered: {}", s.layered);
    println!(
        "always-valid lower bound on OPT_R: {}",
        plan.lower_bound.value
    );
    println!();

    // Execute the plan on the discrete-event simulator and show the Gantt.
    let trace = execute(&plan.tree, &set, net).expect("execution succeeds");
    println!("execution trace:");
    println!("{}", trace.render_gantt(72));
    for id in set.destination_ids().take(3) {
        println!(
            "  {} delivered at {}, reception complete at {}",
            NodeId(id.index()),
            trace.delivery(id),
            trace.reception(id)
        );
    }
    println!("  ...");
    println!();

    // Because this cluster has only two distinct workstation types, the
    // Theorem 2 dynamic program gives the exact optimum to compare against.
    let optimum = planner::find("dp-optimal")
        .expect("the DP planner is registered")
        .plan(&request)
        .expect("planning succeeds");
    assert!(optimum.proven_optimal);
    println!(
        "exact optimum (Theorem 2 DP): {}  —  greedy is within {:.1}% of it",
        optimum.reception_completion(),
        (s.reception_completion.as_f64() / optimum.reception_completion().as_f64() - 1.0) * 100.0
    );
}
