//! The planner registry at a glance: capability metadata for every
//! registered algorithm, a head-to-head comparison on the paper's Figure 1
//! instance, and a batched sweep over a small heterogeneous cluster.
//!
//! Run with `cargo run -p hnow-examples --bin compare_planners [destinations]`.

use hnow_core::planner::{self, supporting_planners, PlanRequest};
use hnow_experiments::comparison::{run_sweep, table, DEFAULT_PLANNERS};
use hnow_model::{MulticastSet, NetParams, NodeSpec};
use hnow_workload::Sweep;

fn main() {
    let destinations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);

    println!("== Registered planners ==\n");
    println!(
        "{:<14} {:<28} {:>6} {:>8}  summary",
        "name", "kind", "max n", "max k"
    );
    for p in planner::registry() {
        let c = p.capabilities();
        let fmt_limit = |l: Option<usize>| l.map_or("-".to_string(), |v| v.to_string());
        println!(
            "{:<14} {:<28} {:>6} {:>8}  {}",
            p.name(),
            format!("{:?}", c.kind),
            fmt_limit(c.max_destinations),
            fmt_limit(c.max_distinct_types),
            c.summary
        );
    }

    println!("\n== Head-to-head on the paper's Figure 1 instance ==\n");
    let slow = NodeSpec::new(2, 3);
    let fast = NodeSpec::new(1, 1);
    let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).expect("valid instance");
    let request = PlanRequest::new(set, NetParams::new(1)).with_seed(7);
    println!(
        "{:<14} {:>5} {:>5} {:>8} {:>10}  theorem-1 rhs",
        "planner", "R_T", "D_T", "proven", "lower bnd"
    );
    for p in supporting_planners(&request.set) {
        let plan = p.plan(&request).expect("planning succeeds");
        println!(
            "{:<14} {:>5} {:>5} {:>8} {:>10}  {:.1}",
            plan.planner,
            plan.reception_completion().raw(),
            plan.delivery_completion().raw(),
            if plan.proven_optimal { "yes" } else { "no" },
            plan.lower_bound.value.raw(),
            plan.theorem1_bound
        );
    }

    println!("\n== Batched sweep: slow-node fraction on a {destinations}-destination cluster ==\n");
    let sweep = Sweep::over_slow_fraction(
        destinations,
        &[0.0, 0.25, 0.5, 0.75, 1.0],
        4,
        0xC0DE ^ destinations as u64,
    );
    let points = run_sweep(&sweep, &DEFAULT_PLANNERS, 7);
    println!(
        "{}",
        table("slow fraction", &points, &DEFAULT_PLANNERS).to_markdown()
    );
    println!(
        "all {} planners above were driven through hnow_core::planner::plan_many — \
         one request shape, no per-algorithm dispatch",
        DEFAULT_PLANNERS.len()
    );
}
