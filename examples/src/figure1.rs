//! Reproduces Figure 1 of the paper (experiment E1): the two example
//! schedules for a multicast from a slow source to three fast and one slow
//! destination, plus what the crate's algorithms achieve on the same
//! instance.
//!
//! Run with `cargo run -p hnow-examples --bin figure1`.

use hnow_experiments::figure1::{
    figure1_instance, figure1a_schedule, figure1b_schedule, run, table,
};
use hnow_sim::execute;

fn main() {
    let report = run();
    println!("{}", table(&report).to_markdown());

    let (set, net) = figure1_instance();
    println!(
        "Figure 1(a) execution (completes at {}):",
        report.schedule_a
    );
    let trace_a = execute(&figure1a_schedule(), &set, net).expect("figure 1(a) executes");
    println!("{}", trace_a.render_gantt(60));

    println!(
        "Figure 1(b) execution (completes at {}):",
        report.schedule_b
    );
    let trace_b = execute(&figure1b_schedule(), &set, net).expect("figure 1(b) executes");
    println!("{}", trace_b.render_gantt(60));

    println!(
        "note: the paper's Figure 1(b) illustrates that schedule (a) is not optimal; \
         the exact optimum for this instance is {} (achieved by the leaf-refined greedy schedule), \
         which is consistent with the paper — it never claims 9 is optimal.",
        report.optimal
    );
}
