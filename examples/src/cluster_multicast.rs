//! Domain scenario: system-level broadcast on a departmental HNOW.
//!
//! A 64-workstation department mixes modern machines with legacy ones; the
//! administrator broadcasts a software-update manifest (a few KiB) from a
//! fast head node. This example sweeps the fraction of legacy machines and
//! compares the paper's greedy algorithm against heterogeneity-oblivious
//! strategies (experiment E8), then prints the scaling behaviour of the
//! greedy planner itself (experiment E2).
//!
//! Run with `cargo run -p hnow-examples --bin cluster_multicast [destinations]`.

use hnow_experiments::comparison::{run_sweep, table, DEFAULT_PLANNERS};
use hnow_experiments::scaling::{greedy_scaling, table as scaling_table};
use hnow_workload::Sweep;

fn main() {
    let destinations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);

    println!(
        "== E8: strategy comparison on a {destinations}-destination departmental cluster ==\n"
    );
    let sweep = Sweep::over_slow_fraction(
        destinations,
        &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0],
        4,
        0xD3B7 ^ destinations as u64,
    );
    let points = run_sweep(&sweep, &DEFAULT_PLANNERS, 7);
    println!(
        "{}",
        table("slow fraction", &points, &DEFAULT_PLANNERS).to_markdown()
    );

    // Headline: how much does ignoring heterogeneity cost at a 25% legacy mix?
    if let Some(p) = points.iter().find(|p| (p.x - 0.25).abs() < 1e-9) {
        let greedy = p.completion("greedy+leaf").unwrap_or(1).max(1);
        for name in ["binomial", "chain", "star", "fnf"] {
            if let Some(v) = p.completion(name) {
                println!(
                    "at 25% legacy machines, {name} is {:.2}x slower than the refined greedy schedule",
                    v as f64 / greedy as f64
                );
            }
        }
    }

    println!("\n== E2: greedy planner scaling ==\n");
    let samples = greedy_scaling(&[256, 1024, 4096, 16384, 65536], 3);
    println!("{}", scaling_table(&samples).to_markdown());
    println!(
        "the normalised column (time / n*log2(n)) staying roughly flat is the O(n log n) claim of Lemma 1"
    );
}
