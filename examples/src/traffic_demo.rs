//! Drives the sessions-at-scale traffic engine (or the sharded cluster
//! service) and prints its report.
//!
//! Usage:
//!
//! ```text
//! traffic_demo [--sessions N] [--seed S] [--planner NAME] [--mean-gap G]
//!              [--group N] [--churn] [--shards N] [--cross-shard-frac F]
//!              [--policy NAME] [--rebalance] [--loss RATE] [--repair NAME]
//!              [--chunks N] [--chunk-interval T] [--sequential]
//!              [--threads N] [--out PATH] [--trace PATH]
//! ```
//!
//! A seeded Poisson session stream (default: 1000 sessions, mean gap 12,
//! groups of 6) is offered to a 48-node two-class cluster and served by the
//! chosen planner (default `greedy+leaf`). With `--shards N` (N ≥ 2) the
//! pool is partitioned into N class-aware shards served by the sharded
//! dispatcher, and `--cross-shard-frac F` makes the given fraction of
//! sessions span at least two shards (gateway-stitched planning; requires
//! `--shards`). `--policy NAME` turns the sharded dispatcher into the
//! online control-plane loop (epoch-batched admission with the named
//! gateway policy — `fastest-member`, `load-aware` or `stitched-rt-min`)
//! and `--rebalance` additionally enables the hysteresis-gated shard
//! rebalancer (implies the default policy when `--policy` is omitted;
//! both require `--shards`). `--loss RATE` injects seeded iid message loss
//! at the given rate (keyed off the run seed) with NACK-driven repair, and
//! `--repair NAME` picks the repairer placement (`source-only`,
//! `subtree-root`, `fastest-in-subtree` or `gateway`; default
//! `source-only`; requires `--loss`). `--chunks N` streams every session
//! as a train of N chunks released every `--chunk-interval T` ticks
//! (default 25; requires `--chunks`), pipelined through the session's tree
//! unless `--sequential` asks for one-shot re-sends per chunk; the report
//! gains a streaming section (steady-state throughput, deadline misses,
//! inter-chunk jitter). `--threads N` runs the whole pipeline inside a
//! rayon pool of N worker threads (0 = automatic). Either way the run
//! is deterministic: the same arguments — at *any* `--threads` value —
//! always produce a byte-identical report, which `--out` writes as JSON.
//! `--churn` makes 30% of the sessions impatient. `--trace PATH` attaches
//! an in-memory kernel trace sink and writes the collected event stream to
//! PATH as Chrome `trace_event` JSON (load it in `chrome://tracing` or
//! Perfetto: one process per shard, one thread lane per node port);
//! tracing is observation-only, so the report — and `--out` — stay
//! byte-identical with the flag on or off.
//!
//! Every flag maps 1:1 onto a [`RunConfig`] field, so a demo invocation is
//! a readable specification of the engine configuration it measured.

use hnow_core::RepairPlacement;
use hnow_model::{ChunkProfile, NetParams};
use hnow_sim::cluster::{ControlConfig, RebalanceConfig, ShardedCluster};
use hnow_sim::sessions::TrafficEngine;
use hnow_sim::{LossProfile, ReliabilityReport, RunConfig, StreamingReport};
use hnow_telemetry::{chrome_trace_json, MemorySink, TelemetryConfig};
use hnow_workload::traffic::{ChurnProfile, NodePool, TrafficPattern};
use hnow_workload::{default_message_size, two_class_table, ShardMap, ShardedPattern};
use std::process::ExitCode;
use std::sync::Arc;

/// Parses a flag's value, exiting with a diagnostic on malformed input —
/// silently substituting a default would misreport what was measured.
fn parse<T: std::str::FromStr>(what: &str, raw: String) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{what} requires a valid value, got {raw:?}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut sessions = 1000usize;
    let mut seed = 0u64;
    let mut planner = String::from("greedy+leaf");
    let mut mean_gap = 12.0f64;
    let mut group = 6usize;
    let mut churn = false;
    let mut shards = 1usize;
    let mut cross_frac: Option<f64> = None;
    let mut policy: Option<String> = None;
    let mut rebalance = false;
    let mut loss: Option<f64> = None;
    let mut repair: Option<String> = None;
    let mut chunks: Option<u32> = None;
    let mut chunk_interval: Option<u64> = None;
    let mut sequential = false;
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--sessions" => sessions = parse("--sessions", take("--sessions")),
            "--seed" => seed = parse("--seed", take("--seed")),
            "--planner" => planner = take("--planner"),
            "--mean-gap" => mean_gap = parse("--mean-gap", take("--mean-gap")),
            "--group" => group = parse("--group", take("--group")),
            "--churn" => churn = true,
            "--shards" => shards = parse("--shards", take("--shards")),
            "--cross-shard-frac" => {
                cross_frac = Some(parse("--cross-shard-frac", take("--cross-shard-frac")));
            }
            "--policy" => policy = Some(take("--policy")),
            "--rebalance" => rebalance = true,
            "--loss" => loss = Some(parse("--loss", take("--loss"))),
            "--repair" => repair = Some(take("--repair")),
            "--chunks" => chunks = Some(parse("--chunks", take("--chunks"))),
            "--chunk-interval" => {
                chunk_interval = Some(parse("--chunk-interval", take("--chunk-interval")));
            }
            "--sequential" => sequential = true,
            "--threads" => threads = Some(parse("--threads", take("--threads"))),
            "--out" => out = Some(take("--out")),
            "--trace" => trace_out = Some(take("--trace")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: traffic_demo [--sessions N] [--seed S] [--planner NAME] \
                     [--mean-gap G] [--group N] [--churn] [--shards N] \
                     [--cross-shard-frac F] [--policy NAME] [--rebalance] \
                     [--loss RATE] [--repair NAME] [--chunks N] [--chunk-interval T] \
                     [--sequential] [--threads N] [--out PATH] [--trace PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if shards == 0 {
        eprintln!("--shards requires at least 1 shard");
        return ExitCode::FAILURE;
    }
    if cross_frac.is_some() && shards < 2 {
        eprintln!("--cross-shard-frac requires --shards with at least 2 shards");
        return ExitCode::FAILURE;
    }
    if cross_frac.is_some_and(|f| !(0.0..=1.0).contains(&f) || !f.is_finite()) {
        eprintln!("--cross-shard-frac must be a finite value in [0, 1]");
        return ExitCode::FAILURE;
    }
    if (policy.is_some() || rebalance) && shards < 2 {
        eprintln!("--policy and --rebalance require --shards with at least 2 shards");
        return ExitCode::FAILURE;
    }
    if loss.is_some_and(|rate| !(0.0..=1.0).contains(&rate) || !rate.is_finite()) {
        eprintln!("--loss must be a finite rate in [0, 1]");
        return ExitCode::FAILURE;
    }
    if repair.is_some() && loss.is_none() {
        eprintln!("--repair requires --loss");
        return ExitCode::FAILURE;
    }
    if chunks == Some(0) {
        eprintln!("--chunks requires at least 1 chunk");
        return ExitCode::FAILURE;
    }
    if (chunk_interval.is_some() || sequential) && chunks.is_none() {
        eprintln!("--chunk-interval and --sequential require --chunks");
        return ExitCode::FAILURE;
    }
    let placement = match repair.as_deref() {
        None => RepairPlacement::SourceOnly,
        Some(name) => match RepairPlacement::from_name(name) {
            Some(placement) => placement,
            None => {
                eprintln!(
                    "--repair: unknown placement {name:?} (expected one of {})",
                    hnow_core::schedule::REPAIR_PLACEMENTS.join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    // The loss draws are keyed off the run seed, so a lossy run is as
    // reproducible as a lossless one.
    let faults = loss.map(|rate| LossProfile::iid(rate, seed));
    let control = (policy.is_some() || rebalance).then(|| ControlConfig {
        policy: policy.unwrap_or_else(|| String::from("fastest-member")),
        rebalance: rebalance.then(RebalanceConfig::default),
        ..ControlConfig::default()
    });
    let profile = chunks.map(|n| {
        let p = ChunkProfile::new(n, chunk_interval.unwrap_or(25));
        if sequential {
            p.sequential()
        } else {
            p
        }
    });

    // Every flag lands on one unified RunConfig; the two run paths below
    // only choose which surface consumes it.
    let mut config = RunConfig::for_planner(&planner);
    config.loss = faults;
    config.repair = placement;
    config.chunks = profile;
    config.threads = threads;
    if shards >= 2 {
        config = config.sharded(shards);
        config.control = control;
    }
    // Observation-only: attaching the sink never changes the report.
    let sink = trace_out
        .map(|path| (path, Arc::new(MemorySink::new())))
        .inspect(|(_, sink)| {
            config.telemetry = Some(TelemetryConfig::new().with_sink(sink.clone()));
        });

    let pool = match NodePool::new(two_class_table(), default_message_size(), &[32, 16]) {
        Ok(pool) => pool,
        Err(err) => {
            eprintln!("failed to build the pool: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut pattern = TrafficPattern::poisson(mean_gap, group);
    if churn {
        pattern.churn = Some(ChurnProfile {
            impatient_fraction: 0.3,
            mean_patience: 4.0 * mean_gap,
        });
    }

    if shards >= 2 {
        run_sharded(
            &pool,
            pattern,
            sessions,
            seed,
            &config,
            cross_frac.unwrap_or(0.0),
            out,
            sink,
        )
    } else {
        run_flat(&pool, pattern, sessions, seed, &config, out, sink)
    }
}

/// Exports the collected trace as Chrome `trace_event` JSON (no-op without
/// `--trace`).
fn write_trace(trace: Option<(String, Arc<MemorySink>)>) -> Result<(), ExitCode> {
    if let Some((path, sink)) = trace {
        let events = sink.take();
        if let Err(err) = std::fs::write(&path, chrome_trace_json(&events) + "\n") {
            eprintln!("failed to write {path}: {err}");
            return Err(ExitCode::FAILURE);
        }
        println!("wrote {} trace events to {path}", events.len());
    }
    Ok(())
}

/// The flat (single-engine) path: generate traffic, run, print the report.
fn run_flat(
    pool: &NodePool,
    pattern: TrafficPattern,
    sessions: usize,
    seed: u64,
    config: &RunConfig,
    out: Option<String>,
    trace: Option<(String, Arc<MemorySink>)>,
) -> ExitCode {
    let requests = match pattern.generate(pool, sessions, seed) {
        Ok(requests) => requests,
        Err(err) => {
            eprintln!("failed to generate traffic: {err}");
            return ExitCode::FAILURE;
        }
    };

    let engine = TrafficEngine::with_config(pool, NetParams::new(2), config);
    let report = match engine.run(&requests) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("traffic run failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "planner {} served {} sessions over {} nodes (seed {seed})",
        report.planner,
        report.sessions,
        pool.len()
    );
    println!(
        "  completed {}  abandoned {}  makespan {}",
        report.completed, report.abandoned, report.makespan
    );
    println!(
        "  throughput {:.3} sessions/kilotick   utilization mean {:.3} peak {:.3}",
        report.throughput_per_kilotick, report.mean_node_utilization, report.peak_node_utilization
    );
    println!(
        "  reception latency mean {:.1}  p50 {}  p99 {}   queue delay mean {:.1}",
        report.mean_reception_latency,
        report.p50_reception_latency,
        report.p99_reception_latency,
        report.mean_queue_delay
    );
    println!(
        "  dp cache: {} lookups, {} hits, {} misses, {} evictions",
        report.cache.lookups, report.cache.hits, report.cache.misses, report.cache.evictions
    );
    if config.loss.is_some() {
        print_reliability(&report.reliability, config.repair);
    }
    print_streaming(&report.streaming);

    if let Err(code) = write_trace(trace) {
        return code;
    }
    write_json(out, &report)
}

/// Prints the reliability section of a lossy run's report.
fn print_reliability(rel: &ReliabilityReport, placement: RepairPlacement) {
    println!(
        "  reliability ({}): delivered {:.4}  residual {:.4}  degraded {}  failed {}",
        placement.name(),
        rel.delivered_fraction,
        rel.residual_loss,
        rel.degraded_sessions,
        rel.failed
    );
    println!(
        "  repair: {} nacks, {} retransmissions, recovery delay p50 {} p95 {} p99 {}",
        rel.nacks,
        rel.repair_sends,
        rel.p50_repair_delay,
        rel.p95_repair_delay,
        rel.p99_repair_delay
    );
}

/// Prints the streaming section of a chunked run's report (no-op when the
/// run carried no chunk trains).
fn print_streaming(streaming: &StreamingReport) {
    if streaming.streaming_sessions == 0 {
        return;
    }
    println!(
        "  streaming: {} sessions, {} chunks offered, throughput {:.3} chunk-deliveries/kilotick",
        streaming.streaming_sessions, streaming.offered_chunks, streaming.steady_state_throughput
    );
    println!(
        "  deadline misses {} ({:.4})   inter-chunk jitter p50 {} p95 {} p99 {}",
        streaming.deadline_misses,
        streaming.deadline_miss_rate,
        streaming.p50_interchunk_jitter,
        streaming.p95_interchunk_jitter,
        streaming.p99_interchunk_jitter
    );
}

/// The sharded service path: partition the pool, generate cross-shard-aware
/// traffic, run the dispatcher, print the merged report.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    pool: &NodePool,
    base: TrafficPattern,
    sessions: usize,
    seed: u64,
    config: &RunConfig,
    cross_frac: f64,
    out: Option<String>,
    trace: Option<(String, Arc<MemorySink>)>,
) -> ExitCode {
    let map = match ShardMap::partition(pool, config.shards) {
        Ok(map) => map,
        Err(err) => {
            eprintln!("failed to partition the pool: {err}");
            return ExitCode::FAILURE;
        }
    };
    let pattern = ShardedPattern {
        base,
        cross_shard_fraction: cross_frac,
    };
    let requests = match pattern.generate(&map, sessions, seed) {
        Ok(requests) => requests,
        Err(err) => {
            eprintln!("failed to generate traffic: {err}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match ShardedCluster::with_config(pool, NetParams::new(2), config) {
        Ok(cluster) => cluster,
        Err(err) => {
            eprintln!("failed to build the sharded cluster: {err}");
            return ExitCode::FAILURE;
        }
    };
    let report = match cluster.run(&requests) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sharded run failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "planner {} served {} sessions over {} nodes in {} shards (seed {seed})",
        report.planner,
        report.sessions,
        pool.len(),
        report.shards
    );
    println!(
        "  completed {}  abandoned {}  makespan {}  cross-shard {} ({:.3})",
        report.total.completed,
        report.total.abandoned,
        report.total.makespan,
        report.cross_sessions,
        report.observed_cross_fraction
    );
    println!(
        "  throughput {:.3} sessions/kilotick   utilization mean {:.3} peak {:.3}   components {}",
        report.total.throughput_per_kilotick,
        report.total.mean_node_utilization,
        report.total.peak_node_utilization,
        report.components
    );
    println!(
        "  reception latency mean {:.1}  p50 {}  p99 {}   queue delay mean {:.1}",
        report.total.mean_reception_latency,
        report.total.p50_reception_latency,
        report.total.p99_reception_latency,
        report.total.mean_queue_delay
    );
    if let Some(control) = &report.control {
        println!(
            "  control: policy {}  admitted {}  reordered {}  shed {}  migrations {}  cache invalidations {}",
            control.policy,
            control.admitted,
            control.reordered,
            control.shed,
            control.migrations.len(),
            control.plan_cache_invalidations
        );
    }
    if config.loss.is_some() {
        print_reliability(&report.reliability, config.repair);
    }
    print_streaming(&report.streaming);
    for shard in &report.per_shard {
        println!(
            "  shard {}: {} nodes, {} sessions, p99 {}, dp hit rate {:.3} ({} evictions), {} plan signatures ({} evictions)",
            shard.shard,
            shard.nodes,
            shard.metrics.sessions,
            shard.metrics.p99_reception_latency,
            shard.dp_hit_rate,
            shard.dp_cache.evictions,
            shard.plan_signatures,
            shard.plan_cache.evictions
        );
    }

    if let Err(code) = write_trace(trace) {
        return code;
    }
    write_json(out, &report)
}

/// Serializes a report to `--out` as pretty JSON (no-op without `--out`).
fn write_json<T: serde::Serialize>(out: Option<String>, report: &T) -> ExitCode {
    if let Some(path) = out {
        let json = match serde_json::to_string_pretty(report) {
            Ok(json) => json,
            Err(err) => {
                eprintln!("failed to serialize report: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = std::fs::write(&path, json + "\n") {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote report to {path}");
    }
    ExitCode::SUCCESS
}
