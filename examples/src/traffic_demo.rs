//! Drives the sessions-at-scale traffic engine and prints its report.
//!
//! Usage:
//!
//! ```text
//! traffic_demo [--sessions N] [--seed S] [--planner NAME] [--mean-gap G]
//!              [--group N] [--churn] [--out PATH]
//! ```
//!
//! A seeded Poisson session stream (default: 1000 sessions, mean gap 12,
//! groups of 6) is offered to a 48-node two-class cluster and served by the
//! chosen planner (default `greedy+leaf`). The run is deterministic: the
//! same arguments always produce a byte-identical `TrafficReport`, which
//! `--out` writes as JSON. `--churn` makes 30% of the sessions impatient.

use hnow_model::NetParams;
use hnow_sim::sessions::{TrafficConfig, TrafficEngine};
use hnow_workload::traffic::{ChurnProfile, NodePool, TrafficPattern};
use hnow_workload::{default_message_size, two_class_table};
use std::process::ExitCode;

/// Parses a flag's value, exiting with a diagnostic on malformed input —
/// silently substituting a default would misreport what was measured.
fn parse<T: std::str::FromStr>(what: &str, raw: String) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{what} requires a valid value, got {raw:?}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut sessions = 1000usize;
    let mut seed = 0u64;
    let mut planner = String::from("greedy+leaf");
    let mut mean_gap = 12.0f64;
    let mut group = 6usize;
    let mut churn = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--sessions" => sessions = parse("--sessions", take("--sessions")),
            "--seed" => seed = parse("--seed", take("--seed")),
            "--planner" => planner = take("--planner"),
            "--mean-gap" => mean_gap = parse("--mean-gap", take("--mean-gap")),
            "--group" => group = parse("--group", take("--group")),
            "--churn" => churn = true,
            "--out" => out = Some(take("--out")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: traffic_demo [--sessions N] [--seed S] [--planner NAME] \
                     [--mean-gap G] [--group N] [--churn] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let pool = match NodePool::new(two_class_table(), default_message_size(), &[32, 16]) {
        Ok(pool) => pool,
        Err(err) => {
            eprintln!("failed to build the pool: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut pattern = TrafficPattern::poisson(mean_gap, group);
    if churn {
        pattern.churn = Some(ChurnProfile {
            impatient_fraction: 0.3,
            mean_patience: 4.0 * mean_gap,
        });
    }
    let requests = match pattern.generate(&pool, sessions, seed) {
        Ok(requests) => requests,
        Err(err) => {
            eprintln!("failed to generate traffic: {err}");
            return ExitCode::FAILURE;
        }
    };

    let engine = TrafficEngine::new(
        &pool,
        NetParams::new(2),
        TrafficConfig::for_planner(&planner),
    );
    let report = match engine.run(&requests) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("traffic run failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "planner {} served {} sessions over {} nodes (seed {seed})",
        report.planner,
        report.sessions,
        pool.len()
    );
    println!(
        "  completed {}  abandoned {}  makespan {}",
        report.completed, report.abandoned, report.makespan
    );
    println!(
        "  throughput {:.3} sessions/kilotick   utilization mean {:.3} peak {:.3}",
        report.throughput_per_kilotick, report.mean_node_utilization, report.peak_node_utilization
    );
    println!(
        "  reception latency mean {:.1}  p50 {}  p99 {}   queue delay mean {:.1}",
        report.mean_reception_latency,
        report.p50_reception_latency,
        report.p99_reception_latency,
        report.mean_queue_delay
    );
    println!(
        "  dp cache: {} lookups, {} hits, {} misses, {} evictions",
        report.cache.lookups, report.cache.hits, report.cache.misses, report.cache.evictions
    );

    if let Some(path) = out {
        let json = match serde_json::to_string_pretty(&report) {
            Ok(json) => json,
            Err(err) => {
                eprintln!("failed to serialize report: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = std::fs::write(&path, json + "\n") {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote report to {path}");
    }
    ExitCode::SUCCESS
}
