//! Runs the full experiment suite (E1–E9) and prints the markdown report
//! that forms the body of `EXPERIMENTS.md`.
//!
//! Run with `cargo run -p hnow-examples --bin experiments_report [seed]`.

use hnow_experiments::{render_markdown, run_all};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0xC0FFEE);
    let reports = run_all(seed);
    println!("{}", render_markdown(&reports));
}
