//! Domain scenario: optimal collective planning for a cluster with a small
//! number of workstation types (experiment E6 / Theorem 2).
//!
//! Many production clusters are bought in batches, so they contain thousands
//! of machines but only a handful of machine *types*. For such clusters the
//! Theorem 2 dynamic program precomputes a table of optimal multicast
//! schedules for **every** possible multicast over those types; a runtime
//! system can then answer "what is the best way to multicast from this node
//! to that subset?" in constant time. This example builds the table for a
//! two-type and a four-type cluster, queries several sub-multicasts, and
//! reconstructs an optimal schedule tree.
//!
//! Run with `cargo run -p hnow-examples --bin limited_heterogeneity`.

use hnow_core::algorithms::dp::DpTable;
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::schedule::reception_completion;
use hnow_experiments::dp_opt::{run, table, DpConfig};
use hnow_model::{MessageSize, NetParams, TypedMulticast};
use hnow_workload::{default_message_size, standard_class_table, two_class_table};

fn main() {
    let net = NetParams::new(2);
    let size: MessageSize = default_message_size();

    println!("== Precomputing the optimal-schedule table for a 24-node, two-type cluster ==\n");
    let table2 = two_class_table();
    let typed = TypedMulticast::from_classes(&table2, size, 0, vec![16, 8]).unwrap();
    let dp = DpTable::build(&typed, net);
    println!(
        "table built: k = {}, {} states, optimum for the full multicast = {}",
        dp.k(),
        dp.num_states(),
        dp.optimum()
    );

    println!("\nconstant-time queries against the precomputed table:");
    for (fast, slow) in [(16usize, 8usize), (8, 8), (16, 0), (0, 8), (4, 2), (1, 1)] {
        let value = dp.query(0, &[fast, slow]).unwrap();
        println!("  {fast:>2} fast + {slow:>2} legacy destinations -> optimal completion {value}");
    }

    let (tree, value) = DpTable::optimal_schedule(&typed, net).unwrap();
    let set = typed.to_multicast_set().unwrap();
    let greedy = greedy_with_options(&set, net, GreedyOptions::REFINED);
    let greedy_r = reception_completion(&greedy, &set, net).unwrap();
    println!(
        "\noptimal schedule reconstructed: depth {}, completion {} (greedy+leaf achieves {})",
        tree.height(),
        value,
        greedy_r
    );

    println!("\n== Four workstation types (standard profile table) ==\n");
    let table4 = standard_class_table();
    let typed4 = TypedMulticast::from_classes(&table4, size, 0, vec![5, 5, 5, 5]).unwrap();
    let dp4 = DpTable::build(&typed4, net);
    println!(
        "k = 4, n = 20: {} states, optimum = {}",
        dp4.num_states(),
        dp4.optimum()
    );

    println!("\n== E6 summary table (DP vs exact search vs greedy) ==\n");
    let samples = run(&DpConfig::default());
    println!("{}", table(&samples).to_markdown());
}
