//! Domain scenario: how do planned multicast schedules behave when the
//! cluster does not exactly match its model? (experiment E9)
//!
//! The receive-send parameters are measured averages; operating-system noise
//! and protocol effects make the actual per-message overheads fluctuate.
//! This example plans schedules with every strategy, then executes them on
//! the discrete-event simulator with ±jitter applied to all overheads, and
//! reports how much of each strategy's advantage survives.
//!
//! Run with `cargo run -p hnow-examples --bin robustness [jitter_percent]`.

use hnow_experiments::robustness::{run, table, RobustnessConfig};

fn main() {
    let jitter_percent: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25.0);

    let config = RobustnessConfig {
        destinations: 48,
        latency: 3,
        jitter: jitter_percent / 100.0,
        trials: 50,
        seed: 0x0B05,
    };
    println!(
        "planning on nominal overheads, executing with +/-{jitter_percent}% jitter, {} trials per strategy\n",
        config.trials
    );
    let samples = run(&config);
    println!("{}", table(&samples).to_markdown());

    let greedy = samples
        .iter()
        .find(|s| s.strategy == "greedy+leaf")
        .expect("greedy+leaf is always measured");
    let binomial = samples
        .iter()
        .find(|s| s.strategy == "binomial")
        .expect("binomial is always measured");
    println!(
        "under jitter the refined greedy schedule still completes in {:.0} on average vs {:.0} for the binomial tree ({:.2}x)",
        greedy.perturbed_mean,
        binomial.perturbed_mean,
        binomial.perturbed_mean / greedy.perturbed_mean
    );
}
