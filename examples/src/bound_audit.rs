//! Audits the Theorem 1 approximation bound empirically (experiments E3,
//! E4 and E5): draws random instances with realistic receive-send ratios,
//! solves them exactly, and reports how close the greedy algorithm actually
//! gets compared with what the theorem guarantees.
//!
//! Run with `cargo run -p hnow-examples --bin bound_audit [samples_per_size]`.

use hnow_experiments::bound_check::{run as run_bound, table as bound_table, BoundCheckConfig};
use hnow_experiments::layered::{run as run_layered, table as layered_table, LayeredConfig};

fn main() {
    let samples_per_size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);

    println!("== E3: Theorem 1 bound audit ==\n");
    let config = BoundCheckConfig {
        sizes: [6, 8, 10],
        samples_per_size,
        latency: 2,
        seed: 0xA0D17,
    };
    let samples = run_bound(&config);
    println!("{}", bound_table(&samples).to_markdown());

    let violations = samples.iter().filter(|s| !s.bound_holds).count();
    let worst = samples.iter().map(|s| s.ratio).fold(0.0, f64::max);
    let unproven = samples.iter().filter(|s| !s.proven).count();
    println!(
        "bound violations: {violations} / {} instances",
        samples.len()
    );
    println!("worst observed greedy/OPT ratio: {worst:.3}");
    if unproven > 0 {
        println!("(note: {unproven} instances hit the search node budget; their optima are upper bounds)");
    }

    println!("\n== E4 + E5: layered-schedule machinery (Lemma 2, Lemma 3) ==\n");
    let layered = run_layered(&LayeredConfig {
        sizes: [6, 7],
        samples_per_size: samples_per_size.min(25),
        latency: 1,
        seed: 0x1A7E12,
    });
    println!("{}", layered_table(&layered).to_markdown());
}
