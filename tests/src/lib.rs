//! Shared fixtures for the cross-crate integration test suite.
//!
//! The integration tests live in `tests/tests/*.rs`; this small library
//! provides instance builders reused by several of them.

use hnow_model::{MulticastSet, NetParams, NodeSpec};

/// The exact 5-node instance of Figure 1 of the paper: a slow source, three
/// fast destinations and one slow destination, with network latency `L = 1`.
///
/// Fast nodes have `o_send = o_recv = 1`; slow nodes have `o_send = 2`,
/// `o_recv = 3`.
pub fn figure1_instance() -> (MulticastSet, NetParams) {
    let slow = NodeSpec::new(2, 3);
    let fast = NodeSpec::new(1, 1);
    let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).expect("valid instance");
    (set, NetParams::new(1))
}

/// A small mixed cluster useful for deterministic integration checks.
pub fn small_mixed_instance() -> (MulticastSet, NetParams) {
    let specs = vec![
        NodeSpec::new(1, 1),
        NodeSpec::new(1, 2),
        NodeSpec::new(2, 3),
        NodeSpec::new(3, 4),
        NodeSpec::new(2, 2),
        NodeSpec::new(4, 6),
    ];
    let set = MulticastSet::new(NodeSpec::new(1, 1), specs).expect("valid instance");
    (set, NetParams::new(2))
}
