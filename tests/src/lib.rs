//! Shared fixtures for the cross-crate integration test suite.
//!
//! The integration tests live in `tests/tests/*.rs`; this small library
//! provides instance builders reused by several of them, and the scenario
//! grid driving the cross-algorithm conformance suite
//! (`tests/conformance.rs`).

use hnow_model::{MulticastSet, NetParams, NodeSpec};
use hnow_workload::{
    bimodal_cluster, default_message_size, fast_slow_mix, figure1_class_table, two_class_table,
    RandomClusterConfig,
};

/// The exact 5-node instance of Figure 1 of the paper: a slow source, three
/// fast destinations and one slow destination, with network latency `L = 1`.
///
/// Fast nodes have `o_send = o_recv = 1`; slow nodes have `o_send = 2`,
/// `o_recv = 3`.
pub fn figure1_instance() -> (MulticastSet, NetParams) {
    let slow = NodeSpec::new(2, 3);
    let fast = NodeSpec::new(1, 1);
    let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).expect("valid instance");
    (set, NetParams::new(1))
}

/// A small mixed cluster useful for deterministic integration checks.
pub fn small_mixed_instance() -> (MulticastSet, NetParams) {
    let specs = vec![
        NodeSpec::new(1, 1),
        NodeSpec::new(1, 2),
        NodeSpec::new(2, 3),
        NodeSpec::new(3, 4),
        NodeSpec::new(2, 2),
        NodeSpec::new(4, 6),
    ];
    let set = MulticastSet::new(NodeSpec::new(1, 1), specs).expect("valid instance");
    (set, NetParams::new(2))
}

/// One generated input of the conformance grid: a named instance plus its
/// network parameters.
#[derive(Debug, Clone)]
pub struct ConformanceScenario {
    /// Human-readable label, used in assertion messages.
    pub name: String,
    /// The multicast instance.
    pub set: MulticastSet,
    /// Network latency parameters.
    pub net: NetParams,
}

impl ConformanceScenario {
    fn new(name: impl Into<String>, set: MulticastSet, net: NetParams) -> Self {
        ConformanceScenario {
            name: name.into(),
            set,
            net,
        }
    }
}

/// The conformance scenario grid: hand-picked shapes (Figure 1,
/// homogeneous, degenerate) plus seeded draws from every `hnow-workload`
/// generator family (random bands, bimodal mixes, limited-heterogeneity
/// class tables) across several latencies and sizes.
pub fn conformance_scenarios() -> Vec<ConformanceScenario> {
    let mut scenarios = Vec::new();

    // The paper's Figure 1 instance.
    let (fig_set, fig_net) = figure1_instance();
    scenarios.push(ConformanceScenario::new("figure1", fig_set, fig_net));

    // Degenerate and homogeneous shapes.
    scenarios.push(ConformanceScenario::new(
        "single-destination",
        MulticastSet::new(NodeSpec::new(2, 3), vec![NodeSpec::new(4, 6)]).expect("valid"),
        NetParams::new(2),
    ));
    scenarios.push(ConformanceScenario::new(
        "homogeneous-n8",
        MulticastSet::homogeneous(NodeSpec::new(3, 4), 8),
        NetParams::new(1),
    ));
    scenarios.push(ConformanceScenario::new(
        "homogeneous-zero-latency",
        MulticastSet::homogeneous(NodeSpec::new(2, 2), 6),
        NetParams::new(0),
    ));

    // Limited-heterogeneity clusters from the class tables (k = 2), small
    // enough for the exact search to cross-check the DP.
    let size = default_message_size();
    for (n, slow_fraction, slow_source, latency) in [
        (6usize, 0.3, false, 2u64),
        (8, 0.5, true, 1),
        (9, 0.25, false, 0),
    ] {
        let spec = fast_slow_mix(&two_class_table(), 0, 1, n, slow_fraction, slow_source);
        let set = spec.multicast_set(size).expect("valid cluster");
        scenarios.push(ConformanceScenario::new(
            format!("two-class-n{n}-slow{slow_fraction}-L{latency}"),
            set,
            NetParams::new(latency),
        ));
    }
    let fig_mix = fast_slow_mix(&figure1_class_table(), 0, 1, 7, 0.4, true);
    scenarios.push(ConformanceScenario::new(
        "figure1-classes-n7",
        fig_mix.multicast_set(size).expect("valid cluster"),
        NetParams::new(1),
    ));

    // Random clusters across the published overhead/ratio bands.
    for (n, latency, seed) in [(5usize, 5u64, 3u64), (8, 2, 11), (16, 3, 42), (32, 1, 7)] {
        let set = RandomClusterConfig {
            destinations: n,
            ..RandomClusterConfig::default()
        }
        .generate(seed)
        .expect("valid random cluster");
        scenarios.push(ConformanceScenario::new(
            format!("random-n{n}-L{latency}-s{seed}"),
            set,
            NetParams::new(latency),
        ));
    }

    // Bimodal fast-majority / slow-straggler mixes.
    for (n, slow_fraction, latency, seed) in [(12usize, 0.25, 3u64, 5u64), (24, 0.5, 1, 9)] {
        let set = bimodal_cluster(n, slow_fraction, seed).expect("valid bimodal cluster");
        scenarios.push(ConformanceScenario::new(
            format!("bimodal-n{n}-slow{slow_fraction}-s{seed}"),
            set,
            NetParams::new(latency),
        ));
    }

    scenarios
}
