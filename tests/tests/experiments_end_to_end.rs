//! Smoke test: the full experiment suite (reduced scale) runs end to end
//! and every headline claim holds.

use hnow_experiments::{render_markdown, run_all};

#[test]
fn all_experiments_run_and_report() {
    let reports = run_all(0xE2E);
    assert_eq!(reports.len(), 13);
    let md = render_markdown(&reports);
    // Every experiment id appears.
    for id in [
        "E1", "E2", "E3", "E4+E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14",
    ] {
        assert!(md.contains(&format!("## {id}")), "missing {id}");
    }
    // The Figure 1 headline carries the paper's numbers.
    let e1 = &reports[0];
    assert!(e1.headline.contains("(a) = 10"));
    assert!(e1.headline.contains("(b) = 9"));
    // No experiment reports violations in its headline.
    let e3 = reports.iter().find(|r| r.id == "E3").unwrap();
    assert!(!e3.headline.contains("violat") || e3.headline.contains("held"));
    let e9 = reports.iter().find(|r| r.id == "E9").unwrap();
    assert!(e9.headline.contains("yes"));
}
