//! E1 — the paper's Figure 1, verified end to end across crates: model
//! construction, schedule evaluation, greedy planning, exact search,
//! simulator execution.

use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::optimal_schedule;
use hnow_core::schedule::{evaluate, is_layered};
use hnow_experiments::figure1::{figure1a_schedule, figure1b_schedule};
use hnow_integration::figure1_instance;
use hnow_sim::execute;

#[test]
fn schedule_a_completes_at_ten_with_the_paper_receptions() {
    let (set, net) = figure1_instance();
    let timing = evaluate(&figure1a_schedule(), &set, net).unwrap();
    assert_eq!(timing.reception_completion().raw(), 10);
    let mut receptions: Vec<u64> = set
        .destination_ids()
        .map(|v| timing.reception(v).raw())
        .collect();
    receptions.sort_unstable();
    assert_eq!(receptions, vec![4, 6, 7, 10]);
}

#[test]
fn schedule_b_completes_at_nine() {
    let (set, net) = figure1_instance();
    let timing = evaluate(&figure1b_schedule(), &set, net).unwrap();
    assert_eq!(timing.reception_completion().raw(), 9);
}

#[test]
fn greedy_matches_schedule_a_and_refinement_beats_schedule_b() {
    let (set, net) = figure1_instance();
    let plain = greedy_with_options(&set, net, GreedyOptions::PLAIN);
    let refined = greedy_with_options(&set, net, GreedyOptions::REFINED);
    assert_eq!(
        evaluate(&plain, &set, net)
            .unwrap()
            .reception_completion()
            .raw(),
        10
    );
    assert!(is_layered(&plain, &set, net).unwrap());
    assert_eq!(
        evaluate(&refined, &set, net)
            .unwrap()
            .reception_completion()
            .raw(),
        8
    );
}

#[test]
fn exact_optimum_is_eight_and_simulator_confirms_it() {
    let (set, net) = figure1_instance();
    let result = optimal_schedule(&set, net);
    assert!(result.proven_optimal);
    assert_eq!(result.value.raw(), 8);
    let trace = execute(&result.tree, &set, net).unwrap();
    assert_eq!(trace.completion.raw(), 8);
}
