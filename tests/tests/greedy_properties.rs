//! Property-based tests of the greedy algorithm and its guarantees
//! (Lemma 1, Theorem 1, the leaf refinement).

use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::{search, SearchOptions};
use hnow_core::bounds::{lower_bound, theorem1_bound};
use hnow_core::schedule::{is_layered, reception_completion, validate};
use hnow_model::{MulticastSet, NetParams, NodeSpec};
use proptest::prelude::*;

/// Generates an arbitrary valid multicast set: overheads are built as
/// (send, send + extra) pairs, sorted and monotonised so the correlation
/// assumption always holds.
fn arb_multicast(max_destinations: usize) -> impl Strategy<Value = MulticastSet> {
    (prop::collection::vec(
        (1u64..=12, 0u64..=14),
        1..=max_destinations + 1,
    ),)
        .prop_map(|(raw,)| {
            let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
            raw.sort_unstable();
            let mut last_recv = 0;
            let specs: Vec<NodeSpec> = raw
                .into_iter()
                .map(|(s, r)| {
                    let r = r.max(last_recv);
                    last_recv = r;
                    NodeSpec::new(s, r)
                })
                .collect();
            let source = specs[0];
            MulticastSet::new(source, specs[1..].to_vec()).expect("monotone specs are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The greedy schedule is always structurally valid and layered, and the
    /// leaf refinement never increases the completion time.
    #[test]
    fn greedy_is_valid_layered_and_refinement_never_hurts(
        set in arb_multicast(20),
        latency in 0u64..=6,
    ) {
        let net = NetParams::new(latency);
        let plain = greedy_with_options(&set, net, GreedyOptions::PLAIN);
        let refined = greedy_with_options(&set, net, GreedyOptions::REFINED);
        validate(&plain, &set).unwrap();
        validate(&refined, &set).unwrap();
        prop_assert!(is_layered(&plain, &set, net).unwrap());
        let plain_r = reception_completion(&plain, &set, net).unwrap();
        let refined_r = reception_completion(&refined, &set, net).unwrap();
        prop_assert!(refined_r <= plain_r);
        // Completion is never below the instance lower bound.
        let lb = lower_bound(&set, net);
        prop_assert!(refined_r >= lb.value);
    }

    /// Theorem 1 holds against the exact optimum on small instances.
    #[test]
    fn theorem1_bound_holds_against_exact_optimum(
        set in arb_multicast(6),
        latency in 0u64..=4,
    ) {
        let net = NetParams::new(latency);
        let greedy = greedy_with_options(&set, net, GreedyOptions::PLAIN);
        let greedy_r = reception_completion(&greedy, &set, net).unwrap();
        let exact = search(&set, net, SearchOptions {
            node_budget: 2_000_000,
            ..SearchOptions::default()
        });
        prop_assume!(exact.proven_optimal);
        prop_assert!(exact.value <= greedy_r);
        if set.num_destinations() > 0 {
            prop_assert!(
                greedy_r.as_f64() < theorem1_bound(&set, exact.value),
                "greedy {} >= bound {}",
                greedy_r,
                theorem1_bound(&set, exact.value)
            );
        }
        // The generic lower bound never exceeds the true optimum.
        prop_assert!(lower_bound(&set, net).value <= exact.value);
    }

    /// Greedy completion is monotone in the latency: a slower network can
    /// never make the same instance finish earlier.
    #[test]
    fn greedy_completion_is_monotone_in_latency(set in arb_multicast(12)) {
        let mut prev = None;
        for latency in [0u64, 1, 2, 4, 8] {
            let net = NetParams::new(latency);
            let tree = greedy_with_options(&set, net, GreedyOptions::PLAIN);
            let r = reception_completion(&tree, &set, net).unwrap();
            if let Some(p) = prev {
                prop_assert!(r >= p);
            }
            prev = Some(r);
        }
    }
}
