//! E7 and E8 — the leaf refinement and the baseline comparison, exercised
//! across crates on generated workloads.

use hnow_core::schedule::{reception_completion, refine_leaves, validate};
use hnow_core::{build_schedule, Strategy};
use hnow_integration::small_mixed_instance;
use hnow_model::NetParams;
use hnow_workload::{bimodal_cluster, RandomClusterConfig};
use proptest::prelude::*;

#[test]
fn every_strategy_produces_valid_schedules_on_generated_clusters() {
    for seed in 0..5u64 {
        let set = RandomClusterConfig {
            destinations: 25,
            ..RandomClusterConfig::default()
        }
        .generate(seed)
        .unwrap();
        let net = NetParams::new(2);
        for strategy in [
            Strategy::Greedy,
            Strategy::GreedyRefined,
            Strategy::FastestNodeFirst,
            Strategy::Binomial,
            Strategy::Chain,
            Strategy::Star,
            Strategy::Random,
        ] {
            let tree = build_schedule(strategy, &set, net, seed);
            validate(&tree, &set).unwrap_or_else(|e| panic!("{}: {e}", strategy.name()));
        }
    }
}

#[test]
fn refined_greedy_beats_oblivious_baselines_on_bimodal_clusters() {
    for seed in 0..8u64 {
        for slow_fraction in [0.1, 0.3, 0.6] {
            let set = bimodal_cluster(32, slow_fraction, seed).unwrap();
            let net = NetParams::new(4);
            let greedy = reception_completion(
                &build_schedule(Strategy::GreedyRefined, &set, net, seed),
                &set,
                net,
            )
            .unwrap();
            for strategy in [
                Strategy::Binomial,
                Strategy::Chain,
                Strategy::Star,
                Strategy::Random,
            ] {
                let other =
                    reception_completion(&build_schedule(strategy, &set, net, seed), &set, net)
                        .unwrap();
                assert!(
                    greedy <= other,
                    "seed {seed} frac {slow_fraction}: greedy {greedy} lost to {} {other}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn small_mixed_instance_orders_strategies_as_expected() {
    let (set, net) = small_mixed_instance();
    let completion = |s: Strategy| {
        reception_completion(&build_schedule(s, &set, net, 1), &set, net)
            .unwrap()
            .raw()
    };
    let refined = completion(Strategy::GreedyRefined);
    let dp = completion(Strategy::DpOptimal);
    assert!(dp <= refined);
    assert!(refined <= completion(Strategy::Chain));
    assert!(refined <= completion(Strategy::Star));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Leaf refinement never increases completion on any valid schedule, of
    /// any strategy, on any instance.
    #[test]
    fn leaf_refinement_never_hurts_any_schedule(
        seed in 0u64..500,
        n in 2usize..18,
        latency in 0u64..=4,
        strategy_idx in 0usize..4,
    ) {
        let strategies = [Strategy::Greedy, Strategy::Binomial, Strategy::Random, Strategy::Chain];
        let set = RandomClusterConfig {
            destinations: n,
            ..RandomClusterConfig::default()
        }
        .generate(seed)
        .unwrap();
        let net = NetParams::new(latency);
        let tree = build_schedule(strategies[strategy_idx], &set, net, seed);
        let before = reception_completion(&tree, &set, net).unwrap();
        let refined = refine_leaves(&tree, &set, net).unwrap();
        validate(&refined, &set).unwrap();
        let after = reception_completion(&refined, &set, net).unwrap();
        prop_assert!(after <= before);
        // Refinement is idempotent in value.
        let twice = refine_leaves(&refined, &set, net).unwrap();
        prop_assert_eq!(reception_completion(&twice, &set, net).unwrap(), after);
    }
}
