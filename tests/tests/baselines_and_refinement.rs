//! E7 and E8 — the leaf refinement and the baseline comparison, exercised
//! across crates on generated workloads.

use hnow_core::planner::{find, PlanContext, PlanRequest};
use hnow_core::schedule::{reception_completion, refine_leaves, validate};
use hnow_integration::small_mixed_instance;
use hnow_model::{MulticastSet, NetParams};
use hnow_workload::{bimodal_cluster, RandomClusterConfig};
use proptest::prelude::*;

/// Registry lookup shared by every test: plan `name` on `set` with `seed`.
fn schedule(name: &str, set: &MulticastSet, net: NetParams, seed: u64) -> hnow_core::ScheduleTree {
    let request = PlanRequest::new(set.clone(), net).with_seed(seed);
    find(name)
        .unwrap_or_else(|| panic!("{name}: missing from the registry"))
        .construct(&request, &PlanContext::new())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .tree
}

#[test]
fn every_strategy_produces_valid_schedules_on_generated_clusters() {
    for seed in 0..5u64 {
        let set = RandomClusterConfig {
            destinations: 25,
            ..RandomClusterConfig::default()
        }
        .generate(seed)
        .unwrap();
        let net = NetParams::new(2);
        for name in [
            "greedy",
            "greedy+leaf",
            "fnf",
            "binomial",
            "chain",
            "star",
            "random",
        ] {
            let tree = schedule(name, &set, net, seed);
            validate(&tree, &set).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn refined_greedy_beats_oblivious_baselines_on_bimodal_clusters() {
    for seed in 0..8u64 {
        for slow_fraction in [0.1, 0.3, 0.6] {
            let set = bimodal_cluster(32, slow_fraction, seed).unwrap();
            let net = NetParams::new(4);
            let greedy =
                reception_completion(&schedule("greedy+leaf", &set, net, seed), &set, net).unwrap();
            for name in ["binomial", "chain", "star", "random"] {
                let other =
                    reception_completion(&schedule(name, &set, net, seed), &set, net).unwrap();
                assert!(
                    greedy <= other,
                    "seed {seed} frac {slow_fraction}: greedy {greedy} lost to {name} {other}"
                );
            }
        }
    }
}

#[test]
fn small_mixed_instance_orders_strategies_as_expected() {
    let (set, net) = small_mixed_instance();
    let completion = |name: &str| {
        reception_completion(&schedule(name, &set, net, 1), &set, net)
            .unwrap()
            .raw()
    };
    let refined = completion("greedy+leaf");
    let dp = completion("dp-optimal");
    assert!(dp <= refined);
    assert!(refined <= completion("chain"));
    assert!(refined <= completion("star"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Leaf refinement never increases completion on any valid schedule, of
    /// any strategy, on any instance.
    #[test]
    fn leaf_refinement_never_hurts_any_schedule(
        seed in 0u64..500,
        n in 2usize..18,
        latency in 0u64..=4,
        strategy_idx in 0usize..4,
    ) {
        let strategies = ["greedy", "binomial", "random", "chain"];
        let set = RandomClusterConfig {
            destinations: n,
            ..RandomClusterConfig::default()
        }
        .generate(seed)
        .unwrap();
        let net = NetParams::new(latency);
        let tree = schedule(strategies[strategy_idx], &set, net, seed);
        let before = reception_completion(&tree, &set, net).unwrap();
        let refined = refine_leaves(&tree, &set, net).unwrap();
        validate(&refined, &set).unwrap();
        let after = reception_completion(&refined, &set, net).unwrap();
        prop_assert!(after <= before);
        // Refinement is idempotent in value.
        let twice = refine_leaves(&refined, &set, net).unwrap();
        prop_assert_eq!(reception_completion(&twice, &set, net).unwrap(), after);
    }
}
