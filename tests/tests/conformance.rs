//! Cross-algorithm conformance suite.
//!
//! Runs every planner in `hnow_core::planner::registry()` against the
//! generated scenario grid of `hnow_integration::conformance_scenarios()`
//! and turns the paper's invariants into machine-checked contracts:
//!
//! * every produced schedule passes structural validation,
//! * the closed-form `R_T`/`D_T` evaluation agrees **exactly** with the
//!   event-driven replay of `hnow-sim`, node by node,
//! * Theorem 1's guarantee `R_greedy ≤ C·OPT_R + β` (with
//!   `C = 2·⌈α_max⌉/α_min`) and the always-valid lower bounds of
//!   `hnow_core::bounds` hold, and
//! * the Theorem 2 dynamic program matches the branch-and-bound optimum on
//!   every limited-heterogeneity instance small enough to search exactly.
//!
//! There is no per-algorithm dispatch here: the suite asks the registry
//! which planners support each scenario, so a future planner is covered by
//! every test below the moment it is registered.
//!
//! This suite is the regression floor for later performance work: any
//! planner or evaluator change that breaks a theorem or diverges from the
//! simulator fails here with the scenario name in the message.

use hnow_core::bounds::theorem1_bound;
use hnow_core::planner::{
    find, plan_many, plan_many_with, registry, supporting_planners, Plan, PlanContext, PlanRequest,
    Planner,
};
use hnow_core::schedule::{evaluate, validate};
use hnow_integration::{conformance_scenarios, ConformanceScenario};
use hnow_model::Time;
use hnow_sim::{check_against_analytic, execute};

/// Destination count up to which the branch-and-bound search is exercised
/// as the exact reference (mirrored by the `branch-bound` planner's
/// capability envelope).
const EXACT_SEARCH_MAX_N: usize = 9;

/// Node budget for the exact reference search.
const SEARCH_BUDGET: u64 = 3_000_000;

/// Seed for the `random` planner, fixed for reproducibility.
const RANDOM_PLANNER_SEED: u64 = 0xC0FFEE;

/// The uniform planning request for a scenario.
fn request_for(scenario: &ConformanceScenario) -> PlanRequest {
    PlanRequest::new(scenario.set.clone(), scenario.net)
        .with_seed(RANDOM_PLANNER_SEED)
        .with_node_budget(SEARCH_BUDGET)
}

/// Every registered planner whose capability envelope covers the scenario,
/// with each one's plan.
fn plans_for(scenario: &ConformanceScenario) -> Vec<Plan> {
    let request = request_for(scenario);
    supporting_planners(&scenario.set)
        .iter()
        .map(|p| {
            p.plan(&request)
                .unwrap_or_else(|e| panic!("{}: {} failed to plan: {e:?}", scenario.name, p.name()))
        })
        .collect()
}

#[test]
fn scenario_grid_is_large_and_diverse() {
    let scenarios = conformance_scenarios();
    assert!(
        scenarios.len() >= 10,
        "conformance grid must exercise at least 10 scenarios, got {}",
        scenarios.len()
    );
    // The grid must cover limited heterogeneity (DP-friendly), general
    // heterogeneity, and at least one exactly-searchable size.
    assert!(
        scenarios
            .iter()
            .any(|s| s.set.num_distinct_types() <= 2
                && s.set.num_destinations() <= EXACT_SEARCH_MAX_N)
    );
    assert!(scenarios.iter().any(|s| s.set.num_distinct_types() > 3));
    assert!(scenarios
        .iter()
        .any(|s| s.set.num_destinations() > EXACT_SEARCH_MAX_N));
    // Scenario names are unique so failure messages identify the input.
    let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");

    // Every registered planner supports at least one scenario, and the
    // always-applicable planners support all of them.
    for planner in registry() {
        let supported = scenarios
            .iter()
            .filter(|s| planner.capabilities().supports(&s.set))
            .count();
        assert!(
            supported > 0,
            "{} supports no conformance scenario",
            planner.name()
        );
    }
}

/// (a) Every supporting planner produces a structurally valid schedule on
/// every scenario.
#[test]
fn every_planner_builds_valid_schedules_on_every_scenario() {
    for scenario in conformance_scenarios() {
        for plan in plans_for(&scenario) {
            validate(&plan.tree, &scenario.set).unwrap_or_else(|e| {
                panic!(
                    "{}: {} produced an invalid schedule: {e:?}",
                    scenario.name, plan.planner
                )
            });
            // The plan's reported timing is a fresh evaluation of its tree.
            let fresh = evaluate(&plan.tree, &scenario.set, scenario.net).unwrap();
            assert_eq!(
                plan.timing, fresh,
                "{}: {} reported timing differs from its tree's evaluation",
                scenario.name, plan.planner
            );
        }
    }
}

/// (b) The analytic `R_T`/`D_T` evaluation equals the event-driven replay
/// exactly — per node and in the completion time — for every planner ×
/// scenario.
#[test]
fn analytic_times_match_event_driven_replay_exactly() {
    for scenario in conformance_scenarios() {
        for plan in plans_for(&scenario) {
            let mismatches = check_against_analytic(&plan.tree, &scenario.set, scenario.net)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: {} failed to replay: {e:?}",
                        scenario.name, plan.planner
                    )
                });
            assert!(
                mismatches.is_empty(),
                "{}: {} sim/analytic divergence at nodes {mismatches:?}",
                scenario.name,
                plan.planner
            );

            let trace = execute(&plan.tree, &scenario.set, scenario.net).expect("replay succeeds");
            assert_eq!(
                trace.completion,
                plan.timing.reception_completion(),
                "{}: {} completion mismatch",
                scenario.name,
                plan.planner
            );
            let max_delivery = scenario
                .set
                .destination_ids()
                .map(|v| trace.delivery(v))
                .max()
                .unwrap_or(Time::ZERO);
            assert_eq!(
                max_delivery,
                plan.timing.delivery_completion(),
                "{}: {} delivery-completion mismatch",
                scenario.name,
                plan.planner
            );
        }
    }
}

/// (c) Theorem 1's bound and the always-valid lower bounds hold on every
/// scenario. `OPT_R` is a proven-optimal plan (branch-and-bound or the DP)
/// where one exists; otherwise any planner's completion time is a valid
/// stand-in (it only weakens the right-hand side).
#[test]
fn theorem1_bound_and_lower_bounds_hold() {
    for scenario in conformance_scenarios() {
        let plans = plans_for(&scenario);
        let mut greedy_completion: Option<Time> = None;
        let mut best_completion: Option<Time> = None;
        let mut proven_optimum: Option<Time> = None;
        let lb = plans[0].lower_bound;

        for plan in &plans {
            let completion = plan.timing.reception_completion();
            assert_eq!(
                plan.lower_bound, lb,
                "{}: lower bound is instance-level, not planner-level",
                scenario.name
            );
            assert!(
                completion >= lb.value,
                "{}: {} completed at {completion}, below the lower bound {}",
                scenario.name,
                plan.planner,
                lb.value
            );
            if plan.planner == "greedy" {
                greedy_completion = Some(completion);
            }
            if plan.proven_optimal {
                if let Some(previous) = proven_optimum {
                    assert_eq!(
                        previous, completion,
                        "{}: exact planners disagree on the optimum",
                        scenario.name
                    );
                }
                proven_optimum = Some(completion);
            }
            best_completion = Some(match best_completion {
                Some(best) => best.min(completion),
                None => completion,
            });
        }
        let best_completion = best_completion.expect("at least one planner ran");

        let opt_ref = match proven_optimum {
            Some(optimum) => {
                assert!(
                    lb.value <= optimum,
                    "{}: lower bound {} exceeds the proven optimum {optimum}",
                    scenario.name,
                    lb.value
                );
                assert!(
                    optimum <= best_completion,
                    "{}: proven optimum {optimum} above a heuristic completion {best_completion}",
                    scenario.name
                );
                optimum
            }
            None => best_completion,
        };

        let greedy_r = greedy_completion.expect("greedy is always among the planners");
        let bound = theorem1_bound(&scenario.set, opt_ref);
        assert!(
            greedy_r.as_f64() <= bound,
            "{}: Theorem 1 violated — greedy {greedy_r} > {bound} (OPT_R reference {opt_ref})",
            scenario.name
        );
    }
}

/// (d) The Theorem 2 dynamic program matches the branch-and-bound optimum
/// on every scenario inside both exact planners' capability envelopes, and
/// both reconstructed schedules attain that optimum.
#[test]
fn dp_matches_branch_and_bound_on_limited_heterogeneity() {
    let dp = find("dp-optimal").expect("dp planner is registered");
    let bb = find("branch-bound").expect("branch-and-bound planner is registered");
    let mut cross_checked = 0usize;
    for scenario in conformance_scenarios() {
        if !dp.capabilities().supports(&scenario.set)
            || !bb.capabilities().supports(&scenario.set)
            || scenario.set.num_destinations() > EXACT_SEARCH_MAX_N
        {
            continue;
        }
        let request = request_for(&scenario);
        let exact = bb.plan(&request).expect("branch-and-bound plans");
        assert!(
            exact.proven_optimal,
            "{}: exact search exhausted its budget on a small instance",
            scenario.name
        );
        let dp_plan = dp.plan(&request).expect("DP plans");
        assert!(dp_plan.proven_optimal);
        assert_eq!(
            dp_plan.timing.reception_completion(),
            exact.timing.reception_completion(),
            "{}: DP optimum != branch-and-bound optimum",
            scenario.name
        );
        for plan in [&exact, &dp_plan] {
            validate(&plan.tree, &scenario.set)
                .unwrap_or_else(|e| panic!("{}: {} invalid: {e:?}", scenario.name, plan.planner));
        }
        cross_checked += 1;
    }
    assert!(
        cross_checked >= 4,
        "expected at least 4 DP-vs-exact cross-checks, ran {cross_checked}"
    );
}

/// (e) The batched `plan_many` facade returns byte-identical plans to
/// sequential per-request planning across the whole scenario grid.
#[test]
fn plan_many_matches_sequential_planning_across_the_grid() {
    let scenarios = conformance_scenarios();
    let requests: Vec<PlanRequest> = scenarios.iter().map(request_for).collect();
    // Planners inside their envelope on *every* scenario (the heuristics);
    // the exact planners are batch-checked per-scenario in (d) and in the
    // core crate's planner tests.
    let planners: Vec<&dyn Planner> = registry()
        .iter()
        .copied()
        .filter(|p| scenarios.iter().all(|s| p.capabilities().supports(&s.set)))
        .collect();
    assert!(planners.len() >= 7, "the seven unrestricted planners");

    let batched = plan_many(&planners, &requests);
    assert_eq!(batched.len(), requests.len());
    for ((scenario, request), row) in scenarios.iter().zip(&requests).zip(&batched) {
        for (planner, result) in planners.iter().zip(row) {
            let sequential = planner.plan(request);
            assert_eq!(
                result,
                &sequential,
                "{}: {} diverged between batched and sequential planning",
                scenario.name,
                planner.name()
            );
        }
    }
}

/// (f) Across a batch of requests drawn from one class table at one
/// latency, the DP planner's whole-network table is built once and then
/// served from the cache, without changing any plan.
#[test]
fn dp_table_cache_is_shared_across_same_class_table_requests() {
    use hnow_workload::{default_message_size, fast_slow_mix, two_class_table};

    let table = two_class_table();
    let size = default_message_size();
    let requests: Vec<PlanRequest> = [(8usize, 0.5), (6, 0.25), (4, 0.5), (8, 0.25)]
        .into_iter()
        .map(|(n, slow_fraction)| {
            let spec = fast_slow_mix(&table, 0, 1, n, slow_fraction, true);
            let set = spec.multicast_set(size).expect("valid cluster");
            PlanRequest::new(set, hnow_model::NetParams::new(2))
        })
        .collect();

    let dp = find("dp-optimal").expect("dp planner is registered");
    let ctx = PlanContext::new();
    // Plan sequentially against the shared context: with a fixed request
    // order, a miss widens the cached table to cover everything seen so
    // far, so the hit pattern is deterministic even if the vendored
    // sequential rayon is later swapped for the real, parallel one.
    let plans: Vec<_> = requests
        .iter()
        .map(|request| dp.plan_with(request, &ctx).expect("DP plans every request"))
        .collect();
    assert_eq!(ctx.dp_cache().lookups(), requests.len());
    assert!(
        ctx.dp_cache().hits() >= 1,
        "same-class-table requests must share a DP table"
    );
    // The cache never changes results, batched or sequential.
    let batched = plan_many_with(&[dp], &requests, &PlanContext::new());
    for ((request, cached), row) in requests.iter().zip(&plans).zip(&batched) {
        let fresh = dp.plan(request).expect("DP plans every request");
        assert_eq!(cached, &fresh);
        assert_eq!(row[0].as_ref().expect("DP plans every request"), cached);
        validate(&cached.tree, &request.set).unwrap();
        assert!(cached.proven_optimal);
    }
}
