//! Cross-algorithm conformance suite.
//!
//! Runs every planner against the generated scenario grid of
//! `hnow_integration::conformance_scenarios()` and turns the paper's
//! invariants into machine-checked contracts:
//!
//! * every produced schedule passes structural validation,
//! * the closed-form `R_T`/`D_T` evaluation agrees **exactly** with the
//!   event-driven replay of `hnow-sim`, node by node,
//! * Theorem 1's guarantee `R_greedy ≤ C·OPT_R + β` (with
//!   `C = 2·⌈α_max⌉/α_min`) and the always-valid lower bounds of
//!   `hnow_core::bounds` hold, and
//! * the Theorem 2 dynamic program matches the branch-and-bound optimum on
//!   every limited-heterogeneity instance small enough to search exactly.
//!
//! This suite is the regression floor for later performance work: any
//! planner or evaluator change that breaks a theorem or diverges from the
//! simulator fails here with the scenario name in the message.

use hnow_core::algorithms::optimal::{search, SearchOptions};
use hnow_core::bounds::{lower_bound, theorem1_bound};
use hnow_core::schedule::{evaluate, reception_completion, validate};
use hnow_core::{build_schedule, dp_optimum, Strategy};
use hnow_integration::{conformance_scenarios, heuristic_planners, ConformanceScenario};
use hnow_model::{Time, TypedMulticast};
use hnow_sim::{check_against_analytic, execute};

/// Destination count up to which the branch-and-bound search is run as the
/// exact reference.
const EXACT_SEARCH_MAX_N: usize = 9;

/// Distinct-type count up to which the Theorem 2 DP is priced in as a
/// planner (its table is exponential in the number of *distinct* types).
const DP_MAX_K: usize = 3;

/// Node budget for the exact reference search.
const SEARCH_BUDGET: u64 = 3_000_000;

/// Seed for the `Strategy::Random` planner, fixed for reproducibility.
const RANDOM_PLANNER_SEED: u64 = 0xC0FFEE;

/// The planners applicable to a scenario: all heuristics, plus the DP
/// whenever the instance's heterogeneity is limited enough.
fn applicable_planners(scenario: &ConformanceScenario) -> Vec<Strategy> {
    let mut planners = heuristic_planners();
    if scenario.set.num_distinct_types() <= DP_MAX_K {
        planners.push(Strategy::DpOptimal);
    }
    planners
}

#[test]
fn scenario_grid_is_large_and_diverse() {
    let scenarios = conformance_scenarios();
    assert!(
        scenarios.len() >= 10,
        "conformance grid must exercise at least 10 scenarios, got {}",
        scenarios.len()
    );
    // The grid must cover limited heterogeneity (DP-friendly), general
    // heterogeneity, and at least one exactly-searchable size.
    assert!(
        scenarios
            .iter()
            .any(|s| s.set.num_distinct_types() <= 2
                && s.set.num_destinations() <= EXACT_SEARCH_MAX_N)
    );
    assert!(scenarios.iter().any(|s| s.set.num_distinct_types() > 3));
    assert!(scenarios
        .iter()
        .any(|s| s.set.num_destinations() > EXACT_SEARCH_MAX_N));
    // Scenario names are unique so failure messages identify the input.
    let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
}

/// (a) Every planner produces a structurally valid schedule on every
/// scenario.
#[test]
fn every_planner_builds_valid_schedules_on_every_scenario() {
    for scenario in conformance_scenarios() {
        for strategy in applicable_planners(&scenario) {
            let tree = build_schedule(strategy, &scenario.set, scenario.net, RANDOM_PLANNER_SEED);
            validate(&tree, &scenario.set).unwrap_or_else(|e| {
                panic!(
                    "{}: {} produced an invalid schedule: {e:?}",
                    scenario.name,
                    strategy.name()
                )
            });
        }
    }
}

/// (b) The analytic `R_T`/`D_T` evaluation equals the event-driven replay
/// exactly — per node and in the completion time — for every planner ×
/// scenario.
#[test]
fn analytic_times_match_event_driven_replay_exactly() {
    for scenario in conformance_scenarios() {
        for strategy in applicable_planners(&scenario) {
            let tree = build_schedule(strategy, &scenario.set, scenario.net, RANDOM_PLANNER_SEED);
            let mismatches = check_against_analytic(&tree, &scenario.set, scenario.net)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: {} failed to replay: {e:?}",
                        scenario.name,
                        strategy.name()
                    )
                });
            assert!(
                mismatches.is_empty(),
                "{}: {} sim/analytic divergence at nodes {mismatches:?}",
                scenario.name,
                strategy.name()
            );

            let trace = execute(&tree, &scenario.set, scenario.net).expect("replay succeeds");
            let timing = evaluate(&tree, &scenario.set, scenario.net).expect("evaluation succeeds");
            assert_eq!(
                trace.completion,
                timing.reception_completion(),
                "{}: {} completion mismatch",
                scenario.name,
                strategy.name()
            );
            let max_delivery = scenario
                .set
                .destination_ids()
                .map(|v| trace.delivery(v))
                .max()
                .unwrap_or(Time::ZERO);
            assert_eq!(
                max_delivery,
                timing.delivery_completion(),
                "{}: {} delivery-completion mismatch",
                scenario.name,
                strategy.name()
            );
        }
    }
}

/// (c) Theorem 1's bound and the always-valid lower bounds hold on every
/// scenario. `OPT_R` is the proven branch-and-bound optimum where the
/// instance is small enough; otherwise any planner's completion time is a
/// valid stand-in (it only weakens the right-hand side).
#[test]
fn theorem1_bound_and_lower_bounds_hold() {
    for scenario in conformance_scenarios() {
        let lb = lower_bound(&scenario.set, scenario.net);
        let mut best_completion: Option<Time> = None;
        let mut greedy_completion: Option<Time> = None;

        for strategy in applicable_planners(&scenario) {
            let tree = build_schedule(strategy, &scenario.set, scenario.net, RANDOM_PLANNER_SEED);
            let completion = reception_completion(&tree, &scenario.set, scenario.net)
                .expect("valid schedule evaluates");
            assert!(
                completion >= lb.value,
                "{}: {} completed at {completion}, below the lower bound {}",
                scenario.name,
                strategy.name(),
                lb.value
            );
            if strategy == Strategy::Greedy {
                greedy_completion = Some(completion);
            }
            best_completion = Some(match best_completion {
                Some(best) => best.min(completion),
                None => completion,
            });
        }
        let best_completion = best_completion.expect("at least one planner ran");

        // Reference optimum: exact where feasible, else the best heuristic.
        let exact = (scenario.set.num_destinations() <= EXACT_SEARCH_MAX_N).then(|| {
            search(
                &scenario.set,
                scenario.net,
                SearchOptions {
                    node_budget: SEARCH_BUDGET,
                    ..SearchOptions::default()
                },
            )
        });
        let opt_ref = match &exact {
            Some(result) if result.proven_optimal => {
                assert!(
                    lb.value <= result.value,
                    "{}: lower bound {} exceeds the proven optimum {}",
                    scenario.name,
                    lb.value,
                    result.value
                );
                assert!(
                    result.value <= best_completion,
                    "{}: proven optimum {} above a heuristic completion {best_completion}",
                    scenario.name,
                    result.value
                );
                result.value
            }
            _ => best_completion,
        };

        let greedy_r = greedy_completion.expect("Greedy is always among the planners");
        let bound = theorem1_bound(&scenario.set, opt_ref);
        assert!(
            greedy_r.as_f64() <= bound,
            "{}: Theorem 1 violated — greedy {} > {bound} (OPT_R reference {opt_ref})",
            scenario.name,
            greedy_r
        );
    }
}

/// (d) The Theorem 2 dynamic program matches the branch-and-bound optimum
/// on every scenario with `k ≤ 2` distinct types and `n ≤ 9` destinations,
/// and its reconstructed schedule attains that optimum.
#[test]
fn dp_matches_branch_and_bound_on_limited_heterogeneity() {
    let mut cross_checked = 0usize;
    for scenario in conformance_scenarios() {
        if scenario.set.num_distinct_types() > 2
            || scenario.set.num_destinations() > EXACT_SEARCH_MAX_N
        {
            continue;
        }
        let exact = search(
            &scenario.set,
            scenario.net,
            SearchOptions {
                node_budget: SEARCH_BUDGET,
                ..SearchOptions::default()
            },
        );
        assert!(
            exact.proven_optimal,
            "{}: exact search exhausted its budget on a small instance",
            scenario.name
        );
        let dp_value = dp_optimum(&scenario.set, scenario.net);
        assert_eq!(
            dp_value, exact.value,
            "{}: DP optimum {dp_value} != branch-and-bound optimum {}",
            scenario.name, exact.value
        );

        // The reconstructed DP schedule is valid and attains the optimum.
        let typed = TypedMulticast::from_multicast_set(&scenario.set);
        let (tree, value) = hnow_core::DpTable::optimal_schedule(&typed, scenario.net)
            .expect("DP reconstruction succeeds");
        assert_eq!(
            value, exact.value,
            "{}: DP table value drifted",
            scenario.name
        );
        validate(&tree, &scenario.set)
            .unwrap_or_else(|e| panic!("{}: DP schedule invalid: {e:?}", scenario.name));
        assert_eq!(
            reception_completion(&tree, &scenario.set, scenario.net).expect("evaluates"),
            exact.value,
            "{}: DP schedule does not attain the optimum",
            scenario.name
        );
        cross_checked += 1;
    }
    assert!(
        cross_checked >= 4,
        "expected at least 4 DP-vs-exact cross-checks, ran {cross_checked}"
    );
}
