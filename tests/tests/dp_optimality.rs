//! E6 — the Theorem 2 dynamic program agrees with the exact search and
//! bounds every heuristic from below.

use hnow_core::algorithms::dp::{dp_optimum, DpTable};
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::{search, SearchOptions};
use hnow_core::planner::{find, PlanContext, PlanRequest};
use hnow_core::schedule::{reception_completion, validate};
use hnow_model::{NetParams, NodeSpec, TypedMulticast};
use proptest::prelude::*;

fn arb_typed(max_per_class: usize) -> impl Strategy<Value = TypedMulticast> {
    (
        1u64..=5,
        0u64..=4,
        2u64..=9,
        0u64..=8,
        0..=max_per_class,
        0..=max_per_class,
        prop::bool::ANY,
    )
        .prop_map(|(s1, e1, ds, de, c1, c2, slow_source)| {
            let fast = NodeSpec::new(s1, s1 + e1);
            let slow = NodeSpec::new(s1 + ds, s1 + e1 + ds + de);
            let source = if slow_source { 1 } else { 0 };
            TypedMulticast::new(vec![fast, slow], source, vec![c1, c2]).expect("valid typed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DP optimum equals the branch-and-bound optimum on every small
    /// two-type instance, and its reconstructed schedule attains it.
    #[test]
    fn dp_equals_exact_optimum(typed in arb_typed(4), latency in 0u64..=3) {
        let net = NetParams::new(latency);
        let table = DpTable::build(&typed, net);
        let set = typed.to_multicast_set().unwrap();
        let exact = search(&set, net, SearchOptions {
            node_budget: 2_000_000,
            ..SearchOptions::default()
        });
        prop_assume!(exact.proven_optimal);
        prop_assert_eq!(table.optimum(), exact.value);

        let tree = table.reconstruct_schedule().unwrap();
        validate(&tree, &set).unwrap();
        prop_assert_eq!(reception_completion(&tree, &set, net).unwrap(), table.optimum());
    }

    /// The DP optimum never exceeds any heuristic's completion time.
    #[test]
    fn dp_lower_bounds_every_heuristic(typed in arb_typed(8), latency in 0u64..=4) {
        let net = NetParams::new(latency);
        let set = typed.to_multicast_set().unwrap();
        let optimum = dp_optimum(&set, net);
        for name in ["greedy", "greedy+leaf", "fnf", "binomial", "chain", "star", "random"] {
            let request = PlanRequest::new(set.clone(), net).with_seed(5);
            let tree = find(name)
                .unwrap()
                .construct(&request, &PlanContext::new())
                .unwrap()
                .tree;
            let r = reception_completion(&tree, &set, net).unwrap();
            prop_assert!(optimum <= r, "{}: {} < dp {}", name, r, optimum);
        }
    }

    /// Note: the optimum is *not* monotone in the destination counts — adding
    /// a fast destination can lower the completion time because the new node
    /// doubles as a relay (e.g. fast (1,1) / slow (3,3), slow source, L = 0:
    /// three slow destinations need 12 alone but only 9 with one fast helper
    /// added). The properties below are the ones that do hold.
    ///
    /// The optimum respects the first-delivery lower bound and is monotone in
    /// the network latency.
    #[test]
    fn dp_optimum_respects_lower_bound_and_latency_monotonicity(
        typed in arb_typed(5),
        latency in 0u64..=3,
    ) {
        let net = NetParams::new(latency);
        let table = DpTable::build(&typed, net);
        let opt = table.optimum();
        if typed.total_destinations() > 0 {
            // First delivery: the source sends once, the message crosses the
            // network, and some destination of a class actually present must
            // incur that class's receive overhead.
            let min_recv = (0..typed.k())
                .filter(|&c| typed.counts()[c] > 0)
                .map(|c| typed.spec_of(c).recv())
                .min()
                .unwrap();
            let src_send = typed.spec_of(typed.source_class()).send();
            prop_assert!(opt >= src_send + net.latency() + min_recv);
        } else {
            prop_assert_eq!(opt, hnow_model::Time::ZERO);
        }
        let slower_net = NetParams::new(latency + 3);
        let slower = DpTable::build(&typed, slower_net).optimum();
        prop_assert!(slower >= opt);
    }
}

/// The helper-node phenomenon discussed above, pinned as a concrete case.
#[test]
fn adding_a_fast_helper_can_lower_the_optimum() {
    let net = NetParams::new(0);
    let fast = NodeSpec::new(1, 1);
    let slow = NodeSpec::new(3, 3);
    let without = TypedMulticast::new(vec![fast, slow], 1, vec![0, 3]).unwrap();
    let with = TypedMulticast::new(vec![fast, slow], 1, vec![1, 3]).unwrap();
    let t_without = DpTable::build(&without, net).optimum();
    let t_with = DpTable::build(&with, net).optimum();
    assert!(
        t_with < t_without,
        "expected the fast helper to lower the optimum: {t_with} vs {t_without}"
    );
}

#[test]
fn greedy_never_beats_dp_on_standard_profiles() {
    use hnow_model::MessageSize;
    use hnow_workload::standard_class_table;
    let table = standard_class_table();
    let net = NetParams::new(3);
    for counts in [[2usize, 2, 2, 2], [4, 0, 0, 4], [0, 3, 3, 0], [6, 2, 1, 1]] {
        let typed =
            TypedMulticast::from_classes(&table, MessageSize::from_kib(4), 0, counts.to_vec())
                .unwrap();
        let set = typed.to_multicast_set().unwrap();
        let dp = DpTable::build(&typed, net).optimum();
        let greedy = greedy_with_options(&set, net, GreedyOptions::REFINED);
        assert!(dp <= reception_completion(&greedy, &set, net).unwrap());
    }
}
