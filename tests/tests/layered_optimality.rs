//! E4 and E5 — the layered-schedule results behind Theorem 1, checked
//! across crates with randomly generated instances.

use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::{search, Objective, SearchOptions};
use hnow_core::algorithms::transform::{
    has_power_of_two_sends, power_of_two_rounding, uniform_integer_ratio,
};
use hnow_core::schedule::delivery_completion;
use hnow_model::NetParams;
use hnow_workload::RandomClusterConfig;

fn small_instances(n: usize, count: usize) -> Vec<hnow_model::MulticastSet> {
    (0..count)
        .map(|seed| {
            RandomClusterConfig {
                destinations: n,
                min_send: 1,
                max_send: 10,
                min_ratio: 1.0,
                max_ratio: 1.8,
                random_source: true,
            }
            .generate(seed as u64 * 31 + 7)
            .unwrap()
        })
        .collect()
}

#[test]
fn corollary1_greedy_minimises_delivery_over_layered_schedules() {
    for set in small_instances(6, 12) {
        for latency in [0u64, 1, 3] {
            let net = NetParams::new(latency);
            let greedy = greedy_with_options(&set, net, GreedyOptions::PLAIN);
            let greedy_d = delivery_completion(&greedy, &set, net).unwrap();
            let layered_opt = search(
                &set,
                net,
                SearchOptions {
                    objective: Objective::Delivery,
                    layered_only: true,
                    node_budget: 3_000_000,
                },
            );
            assert!(layered_opt.proven_optimal);
            assert_eq!(
                greedy_d, layered_opt.value,
                "greedy D_T must equal the layered optimum (L={latency}, set={set})"
            );
        }
    }
}

#[test]
fn equation4_rounded_greedy_equals_unrestricted_delivery_optimum() {
    for set in small_instances(6, 10) {
        let rounded = power_of_two_rounding(&set).unwrap();
        assert!(has_power_of_two_sends(&rounded.set));
        assert_eq!(
            uniform_integer_ratio(&rounded.set),
            Some(rounded.uniform_ratio)
        );
        for latency in [0u64, 2] {
            let net = NetParams::new(latency);
            let greedy = greedy_with_options(&rounded.set, net, GreedyOptions::PLAIN);
            let greedy_d = delivery_completion(&greedy, &rounded.set, net).unwrap();
            let opt = search(
                &rounded.set,
                net,
                SearchOptions {
                    objective: Objective::Delivery,
                    layered_only: false,
                    node_budget: 3_000_000,
                },
            );
            assert!(opt.proven_optimal);
            assert_eq!(
                greedy_d, opt.value,
                "equation (4): greedy must be delivery-optimal on the rounded instance"
            );
        }
    }
}

#[test]
fn rounding_growth_factors_match_theorem1_analysis() {
    for set in small_instances(10, 10) {
        let rounded = power_of_two_rounding(&set).unwrap();
        assert!(rounded.max_send_growth < 2.0 + 1e-9);
        let bound = 2.0 * set.alpha_max().ceil() / set.alpha_min();
        assert!(
            rounded.max_recv_growth < bound + 1e-9,
            "recv growth {} exceeds 2*alpha_max/alpha_min = {}",
            rounded.max_recv_growth,
            bound
        );
    }
}
