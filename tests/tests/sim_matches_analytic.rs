//! E9 — the discrete-event simulator reproduces the closed-form schedule
//! times for every strategy on arbitrary instances, and perturbed execution
//! behaves sanely.

use hnow_core::planner::{find, PlanContext, PlanRequest};
use hnow_core::schedule::evaluate;
use hnow_model::{MulticastSet, NetParams, NodeSpec};
use hnow_sim::{check_against_analytic, execute, execute_with_specs, PerturbConfig};
use proptest::prelude::*;

const ALL_STRATEGIES: [&str; 7] = [
    "greedy",
    "greedy+leaf",
    "fnf",
    "binomial",
    "chain",
    "star",
    "random",
];

/// Registry lookup shared by every test: plan `name` on `set` with `seed`.
fn schedule(name: &str, set: &MulticastSet, net: NetParams, seed: u64) -> hnow_core::ScheduleTree {
    let request = PlanRequest::new(set.clone(), net).with_seed(seed);
    find(name)
        .unwrap_or_else(|| panic!("{name}: missing from the registry"))
        .construct(&request, &PlanContext::new())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .tree
}

fn arb_multicast(
    max_destinations: usize,
) -> impl proptest::strategy::Strategy<Value = MulticastSet> {
    prop::collection::vec((1u64..=10, 0u64..=12), 1..=max_destinations + 1).prop_map(|raw| {
        let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
        raw.sort_unstable();
        let mut last = 0;
        let specs: Vec<NodeSpec> = raw
            .into_iter()
            .map(|(s, r)| {
                let r = r.max(last);
                last = r;
                NodeSpec::new(s, r)
            })
            .collect();
        MulticastSet::new(specs[0], specs[1..].to_vec()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Simulated times equal analytic times for every strategy.
    #[test]
    fn simulator_equals_analytic(
        set in arb_multicast(16),
        latency in 0u64..=5,
        strategy_idx in 0usize..ALL_STRATEGIES.len(),
        seed in 0u64..1000,
    ) {
        let net = NetParams::new(latency);
        let tree = schedule(ALL_STRATEGIES[strategy_idx], &set, net, seed);
        let mismatches = check_against_analytic(&tree, &set, net).unwrap();
        prop_assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    /// Busy intervals never overlap and total busy time is exactly the sum
    /// of incurred overheads.
    #[test]
    fn busy_intervals_are_consistent(
        set in arb_multicast(12),
        latency in 0u64..=4,
    ) {
        let net = NetParams::new(latency);
        let tree = schedule("greedy", &set, net, 0);
        let trace = execute(&tree, &set, net).unwrap();
        for (i, timeline) in trace.timelines.iter().enumerate() {
            for pair in timeline.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start);
            }
            let spec = set.spec(hnow_model::NodeId(i));
            let expected = spec.send() * (tree.children(hnow_model::NodeId(i)).len() as u64)
                + if i == 0 { hnow_model::Time::ZERO } else { spec.recv() };
            prop_assert_eq!(trace.busy_time(hnow_model::NodeId(i)), expected);
        }
    }

    /// Uniformly scaling every overhead up can never make the perturbed
    /// execution finish earlier than the nominal one.
    #[test]
    fn inflating_overheads_never_helps(
        set in arb_multicast(10),
        latency in 0u64..=3,
        extra in 1u64..=5,
    ) {
        let net = NetParams::new(latency);
        let tree = schedule("greedy+leaf", &set, net, 1);
        let nominal = execute(&tree, &set, net).unwrap();
        let inflated: Vec<NodeSpec> = (0..set.num_nodes())
            .map(|i| {
                let s = set.spec(hnow_model::NodeId(i));
                NodeSpec::new(s.send().raw() + extra, s.recv().raw() + extra)
            })
            .collect();
        let slower = execute_with_specs(&tree, &inflated, net).unwrap();
        prop_assert!(slower.completion >= nominal.completion);
    }
}

#[test]
fn evaluate_and_execute_agree_on_a_large_cluster() {
    use hnow_workload::RandomClusterConfig;
    let set = RandomClusterConfig {
        destinations: 200,
        ..RandomClusterConfig::default()
    }
    .generate(99)
    .unwrap();
    let net = NetParams::new(3);
    for name in ALL_STRATEGIES {
        let tree = schedule(name, &set, net, 4);
        let timing = evaluate(&tree, &set, net).unwrap();
        let trace = execute(&tree, &set, net).unwrap();
        assert_eq!(trace.completion, timing.reception_completion(), "{name}");
    }
}

#[test]
fn perturbation_band_respected_end_to_end() {
    use hnow_workload::RandomClusterConfig;
    let set = RandomClusterConfig {
        destinations: 30,
        ..RandomClusterConfig::default()
    }
    .generate(7)
    .unwrap();
    let net = NetParams::new(2);
    let tree = schedule("greedy+leaf", &set, net, 0);
    let nominal = execute(&tree, &set, net).unwrap().completion;
    for seed in 0..10u64 {
        let specs = PerturbConfig::new(0.2, seed).perturb(&set);
        let perturbed = execute_with_specs(&tree, &specs, net).unwrap().completion;
        // ±20% jitter plus integer rounding slack per hop.
        assert!(perturbed.as_f64() <= nominal.as_f64() * 1.2 + 2.0 * set.num_nodes() as f64);
        assert!(perturbed.as_f64() >= nominal.as_f64() * 0.7);
    }
}
