//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored Value-based `serde` without `syn`/`quote`: the input item is
//! parsed directly from the token stream. Supported shapes — everything the
//! workspace derives on — are non-generic named-field structs, tuple
//! structs, and enums with unit, newtype and struct variants. The
//! `#[serde(transparent)]` attribute on newtype structs is honoured (and is
//! the default behaviour for single-field tuple structs anyway, matching
//! serde's JSON representation of newtypes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with the given arity.
    Tuple { name: String, arity: usize },
    /// Enum.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<String>),
}

/// Splits the top-level tokens of a group body into comma-separated chunks,
/// treating `<`/`>` as nesting so generic arguments don't split fields.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Strips leading `#[...]` attributes and `pub`/`pub(...)` visibility from a
/// token chunk.
fn strip_attrs_and_vis(mut tokens: &[TokenTree]) -> &[TokenTree] {
    loop {
        match tokens {
            [TokenTree::Punct(p), TokenTree::Group(_), rest @ ..] if p.as_char() == '#' => {
                tokens = rest;
            }
            [TokenTree::Ident(id), TokenTree::Group(g), rest @ ..]
                if id.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                tokens = rest;
            }
            [TokenTree::Ident(id), rest @ ..] if id.to_string() == "pub" => {
                tokens = rest;
            }
            _ => return tokens,
        }
    }
}

/// Extracts the field names of a named-field body.
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    split_commas(body)
        .iter()
        .filter_map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            match chunk {
                [TokenTree::Ident(name), TokenTree::Punct(colon), ..] if colon.as_char() == ':' => {
                    Some(name.to_string())
                }
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> (Item, bool) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut transparent = false;
    let mut i = 0;
    // Leading attributes; remember whether `#[serde(transparent)]` appears.
    while i + 1 < tokens.len() {
        if let (TokenTree::Punct(p), TokenTree::Group(g)) = (&tokens[i], &tokens[i + 1]) {
            if p.as_char() == '#' {
                if g.to_string()
                    .replace(' ', "")
                    .contains("serde(transparent)")
                {
                    transparent = true;
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    let rest = strip_attrs_and_vis(&tokens[i..]);
    match rest {
        [TokenTree::Ident(kw), TokenTree::Ident(name), body, ..] if kw.to_string() == "struct" => {
            let name = name.to_string();
            match body {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    (
                        Item::Struct {
                            name,
                            fields: named_fields(&body),
                        },
                        transparent,
                    )
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    (
                        Item::Tuple {
                            name,
                            arity: split_commas(&body).len(),
                        },
                        transparent,
                    )
                }
                _ => panic!("serde derive: unsupported struct shape for `{name}`"),
            }
        }
        [TokenTree::Ident(kw), TokenTree::Ident(name), TokenTree::Group(g), ..]
            if kw.to_string() == "enum" && g.delimiter() == Delimiter::Brace =>
        {
            let name = name.to_string();
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_commas(&body)
                .iter()
                .filter_map(|chunk| {
                    let chunk = strip_attrs_and_vis(chunk);
                    match chunk {
                        [] => None,
                        [TokenTree::Ident(v)] => Some(Variant::Unit(v.to_string())),
                        [TokenTree::Ident(v), TokenTree::Group(g)]
                            if g.delimiter() == Delimiter::Parenthesis =>
                        {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            assert!(
                                split_commas(&inner).len() == 1,
                                "serde derive: only newtype tuple variants are supported"
                            );
                            Some(Variant::Newtype(v.to_string()))
                        }
                        [TokenTree::Ident(v), TokenTree::Group(g)]
                            if g.delimiter() == Delimiter::Brace =>
                        {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Some(Variant::Struct(v.to_string(), named_fields(&inner)))
                        }
                        _ => panic!("serde derive: unsupported enum variant shape"),
                    }
                })
                .collect();
            (Item::Enum { name, variants }, transparent)
        }
        _ => panic!("serde derive: unsupported item"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (item, _transparent) = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Tuple { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Seq(vec![{}])\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    Variant::Newtype(v) => format!(
                        "{name}::{v}(inner) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(inner))]),"
                    ),
                    Variant::Struct(v, fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![(\"{v}\"\
                             .to_string(), ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde derive: generated invalid Rust")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (item, _transparent) = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match v.get(\"{f}\") {{\n\
                             Some(field) => ::serde::Deserialize::from_value(field)?,\n\
                             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                 .map_err(|_| ::serde::Error::msg(\"missing field `{f}`\"))?,\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if !matches!(v, ::serde::Value::Map(_)) {{\n\
                             return Err(::serde::Error::msg(\"expected map for struct {name}\"));\n\
                         }}\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Tuple { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                             Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({i})\
                             .ok_or_else(|| ::serde::Error::msg(\"tuple struct too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                             match v {{\n\
                                 ::serde::Value::Seq(items) => Ok({name}({})),\n\
                                 _ => Err(::serde::Error::msg(\"expected sequence\")),\n\
                             }}\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!("\"{v}\" => Ok({name}::{v}),")),
                    _ => None,
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(v) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(val)?)),"
                    )),
                    Variant::Struct(v, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(val.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::Error::msg(\"missing field `{f}`\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {}\n\
                                 _ => Err(::serde::Error::msg(\"unknown variant\")),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, val) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     _ => Err(::serde::Error::msg(\"unknown variant\")),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::msg(\"expected enum representation\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde derive: generated invalid Rust")
}
