//! Offline stand-in for the `rayon` crate.
//!
//! The workspace only uses `par_iter()` followed by ordinary iterator
//! combinators; with no crates.io access this vendored crate degrades those
//! call-sites to sequential `std` iterators, which keeps results identical
//! (rayon's `collect` preserves order) at the cost of parallel speed-up. The
//! real dependency can be swapped back in without touching call-sites.

pub mod prelude {
    //! Sequential re-implementation of the rayon prelude traits.

    /// `par_iter()` on shared slices and vectors.
    pub trait IntoParallelRefIterator<'a> {
        /// The (sequential) iterator type.
        type Iter: Iterator;

        /// Returns a "parallel" iterator over references — sequentially
        /// evaluated in this vendored stand-in.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;

        /// Converts into a "parallel" iterator — sequentially evaluated in
        /// this vendored stand-in.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] — never produced by this
/// sequential stand-in, present only for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Sequential stand-in for `rayon::ThreadPool`: [`ThreadPool::install`]
/// simply runs the closure on the calling thread. The configured thread
/// count is recorded so callers (e.g. throughput benches parameterised over
/// pool sizes) can report it, but it buys no parallelism here.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool — sequentially, in this stand-in.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The configured (not actual) number of threads.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Sequential stand-in for `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Requests a specific number of threads (0 = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}
