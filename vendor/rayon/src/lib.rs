//! Offline stand-in for the `rayon` crate.
//!
//! The workspace only uses `par_iter()` followed by ordinary iterator
//! combinators; with no crates.io access this vendored crate degrades those
//! call-sites to sequential `std` iterators, which keeps results identical
//! (rayon's `collect` preserves order) at the cost of parallel speed-up. The
//! real dependency can be swapped back in without touching call-sites.

pub mod prelude {
    //! Sequential re-implementation of the rayon prelude traits.

    /// `par_iter()` on shared slices and vectors.
    pub trait IntoParallelRefIterator<'a> {
        /// The (sequential) iterator type.
        type Iter: Iterator;

        /// Returns a "parallel" iterator over references — sequentially
        /// evaluated in this vendored stand-in.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;

        /// Converts into a "parallel" iterator — sequentially evaluated in
        /// this vendored stand-in.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}
