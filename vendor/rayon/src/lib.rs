//! Offline stand-in for the `rayon` crate, backed by real worker threads.
//!
//! The workspace only uses `par_iter()`/`into_par_iter()` followed by
//! `map(..).collect()`, plus `ThreadPoolBuilder`/`ThreadPool::install`.
//! With no crates.io access this vendored crate implements exactly that
//! surface over a small shared worker pool:
//!
//! * **Order-preserving `collect`** — results are written into per-index
//!   slots and merged positionally, so the output is identical to the
//!   sequential evaluation no matter how work interleaves across threads
//!   (the same guarantee real rayon's `collect` gives).
//! * **One global worker set** — worker threads are spawned lazily, live
//!   for the process, and serve every pool; a [`ThreadPool`] is a view
//!   that caps how many of them one computation may use.
//! * **`install` scoping** — [`ThreadPool::install`] sets the effective
//!   thread count for the closure *and* for every worker executing work
//!   on its behalf, so nested parallel calls inherit the cap and
//!   [`current_num_threads`] reports it from any participating thread.
//! * **Degradation, not deadlock** — the calling thread always
//!   participates and can finish the whole job alone, so a computation
//!   completes even if no worker ever picks up a share; panics inside a
//!   parallel closure are caught on the worker, forwarded, and re-thrown
//!   on the calling thread after the job drains.
//!
//! The real dependency can be swapped back in without touching call-sites.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

pub mod prelude {
    //! The rayon prelude traits used by this workspace.

    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

thread_local! {
    /// The thread-count cap installed on this thread (via
    /// [`ThreadPool::install`] on a caller, or job inheritance on a worker).
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads the automatic (uncapped) configuration uses.
fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads parallel work started from this thread may use:
/// the innermost [`ThreadPool::install`] cap, or the automatic count
/// (`std::thread::available_parallelism`) outside any pool.
pub fn current_num_threads() -> usize {
    INSTALLED
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

/// Restores the previous installed cap on drop, so `install` nesting and
/// panics cannot leave a stale cap behind.
struct InstallGuard(Option<usize>);

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|cell| cell.set(self.0));
    }
}

fn install_cap(threads: usize) -> InstallGuard {
    InstallGuard(INSTALLED.with(|cell| cell.replace(Some(threads))))
}

/// One parallel-for computation shared between the caller and the workers
/// that picked up its queue tickets.
struct Job {
    /// Type-erased pointer to the caller's `Fn(usize)`. Only dereferenced
    /// while the caller is blocked in [`parallel_for`] — see the safety
    /// argument there.
    task: *const (dyn Fn(usize) + Sync),
    /// Effective thread count, inherited by workers for nested calls.
    threads: usize,
    /// Next index to claim; claims beyond `total` mean the job is drained.
    next: AtomicUsize,
    total: usize,
    /// Indices fully executed. The release/acquire chain through this
    /// counter (every executor RMWs it after its slot writes) is what makes
    /// all side effects visible to the caller once `finished` is observed.
    done: AtomicUsize,
    status: Mutex<JobStatus>,
    finished_cv: Condvar,
}

// SAFETY: `task` is only dereferenced by executors while the submitting
// thread is blocked inside `parallel_for`, which outlives every execution
// (it waits for `done == total`, and each dereference happens before the
// corresponding `done` increment). Stale queue tickets popped later never
// dereference: by then `next >= total`, so the claim loop exits first.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

#[derive(Default)]
struct JobStatus {
    finished: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// The process-wide worker set: a ticket queue plus lazily spawned threads.
#[derive(Default)]
struct Registry {
    queue: Mutex<VecDeque<std::sync::Arc<Job>>>,
    ready: Condvar,
    spawned: Mutex<usize>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Grows the worker set to at least `wanted` threads. Spawn failure
/// degrades to fewer workers (the caller can always finish alone).
fn ensure_workers(wanted: usize) {
    let reg = registry();
    let mut spawned = reg.spawned.lock().expect("worker count lock poisoned");
    while *spawned < wanted {
        let name = format!("hnow-rayon-{}", *spawned);
        let ok = std::thread::Builder::new()
            .name(name)
            .spawn(|| worker_loop(registry()))
            .is_ok();
        if !ok {
            break;
        }
        *spawned += 1;
    }
}

fn worker_loop(reg: &'static Registry) {
    loop {
        let job = {
            let mut queue = reg.queue.lock().expect("ticket queue lock poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = reg.ready.wait(queue).expect("ticket queue lock poisoned");
            }
        };
        // Nested parallel calls from inside the task see the job's cap.
        let _guard = install_cap(job.threads);
        run_job(&job);
    }
}

/// Claims and executes indices until the job is drained. Panics from the
/// task are recorded (first wins) and re-thrown by the submitting caller;
/// the index still counts as done so the job always drains.
fn run_job(job: &Job) {
    loop {
        let index = job.next.fetch_add(1, Ordering::Relaxed);
        if index >= job.total {
            break;
        }
        let task = job.task;
        // SAFETY: the submitting thread is still inside `parallel_for`
        // (it waits for this index's `done` increment below), so the
        // closure behind `task` is alive.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*task)(index) }));
        if let Err(payload) = outcome {
            let mut status = job.status.lock().expect("job status lock poisoned");
            if status.panic.is_none() {
                status.panic = Some(payload);
            }
        }
        if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.total {
            let mut status = job.status.lock().expect("job status lock poisoned");
            status.finished = true;
            job.finished_cv.notify_all();
        }
    }
}

/// Runs `task(0..total)` across up to `threads` threads (the caller plus
/// workers), returning when every index has executed. Exposed to the
/// iterator layer only; call-sites use the rayon-shaped API.
fn parallel_for(total: usize, threads: usize, task: &(dyn Fn(usize) + Sync)) {
    if threads <= 1 || total <= 1 {
        for index in 0..total {
            task(index);
        }
        return;
    }
    let helpers = (threads - 1).min(total - 1);
    ensure_workers(helpers);
    // SAFETY: erases the borrow lifetime so the job can sit in the static
    // queue. Sound because this function blocks until every index has
    // executed, and stale tickets never dereference (see the Send/Sync
    // safety comment on `Job`).
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync + '_)) };
    let job = std::sync::Arc::new(Job {
        task,
        threads,
        next: AtomicUsize::new(0),
        total,
        done: AtomicUsize::new(0),
        status: Mutex::new(JobStatus::default()),
        finished_cv: Condvar::new(),
    });
    {
        let reg = registry();
        let mut queue = reg.queue.lock().expect("ticket queue lock poisoned");
        for _ in 0..helpers {
            queue.push_back(std::sync::Arc::clone(&job));
        }
        drop(queue);
        reg.ready.notify_all();
    }
    run_job(&job);
    let mut status = job.status.lock().expect("job status lock poisoned");
    while !status.finished {
        status = job
            .finished_cv
            .wait(status)
            .expect("job status lock poisoned");
    }
    if let Some(payload) = status.panic.take() {
        drop(status);
        std::panic::resume_unwind(payload);
    }
}

/// Executes `run(i)` for `0..len` in parallel and collects the results in
/// index order — the order-preserving heart of every `collect`.
fn collect_indexed<R: Send>(len: usize, run: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return (0..len).map(run).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    parallel_for(len, threads, &|index| {
        let result = run(index);
        *slots[index].lock().expect("result slot lock poisoned") = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("every index was executed")
        })
        .collect()
}

/// `par_iter()` on shared slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type iterated by reference.
    type Item: 'a;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;

    /// Converts into a parallel iterator over owned items.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;

    fn into_par_iter(self) -> IntoParIter<I::Item> {
        IntoParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A borrowing parallel iterator (the result of `par_iter`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each reference through `op`.
    pub fn map<R, F: Fn(&'a T) -> R>(self, op: F) -> ParRefMap<'a, T, F> {
        ParRefMap {
            items: self.items,
            op,
        }
    }
}

/// A mapped borrowing parallel iterator.
pub struct ParRefMap<'a, T, F> {
    items: &'a [T],
    op: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParRefMap<'a, T, F> {
    /// Evaluates the map in parallel, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParRefMap { items, op } = self;
        collect_indexed(items.len(), |index| op(&items[index]))
            .into_iter()
            .collect()
    }
}

/// An owning parallel iterator (the result of `into_par_iter`).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Maps each owned item through `op`.
    pub fn map<R, F: Fn(T) -> R>(self, op: F) -> ParOwnedMap<T, F> {
        ParOwnedMap {
            items: self.items,
            op,
        }
    }
}

/// A mapped owning parallel iterator.
pub struct ParOwnedMap<T, F> {
    items: Vec<T>,
    op: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParOwnedMap<T, F> {
    /// Evaluates the map in parallel, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParOwnedMap { items, op } = self;
        let threads = current_num_threads();
        if threads <= 1 || items.len() <= 1 {
            return items.into_iter().map(op).collect();
        }
        let cells: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        collect_indexed(cells.len(), |index| {
            let item = cells[index]
                .lock()
                .expect("item cell lock poisoned")
                .take()
                .expect("each item is taken exactly once");
            op(item)
        })
        .into_iter()
        .collect()
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] — never produced by this
/// stand-in, present only for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A view over the shared worker set capping how many threads one
/// computation may use. [`ThreadPool::install`] scopes the cap to the
/// closure (nested parallel calls inherit it, even on worker threads).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        ensure_workers(self.num_threads.saturating_sub(1));
        let _guard = install_cap(self.num_threads);
        op()
    }

    /// The number of threads a computation in this pool actually uses (the
    /// caller plus the workers serving it).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Requests a specific number of threads (0 = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning any missing workers up front. Infallible
    /// in this stand-in (worker spawn failure degrades to fewer helpers).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        ensure_workers(num_threads.saturating_sub(1));
        Ok(ThreadPool { num_threads })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::time::{Duration, Instant};

    fn pool(threads: usize) -> ThreadPool {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
    }

    #[test]
    fn collect_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let par: Vec<u64> = pool(8).install(|| items.par_iter().map(|&x| x * x).collect());
        assert_eq!(par, expected);
        let owned: Vec<u64> = pool(8).install(|| items.into_par_iter().map(|x| x * x).collect());
        assert_eq!(owned, expected);
    }

    #[test]
    fn current_num_threads_reports_the_installed_cap() {
        assert!(current_num_threads() >= 1, "default is at least one thread");
        let pool = pool(3);
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(current_num_threads), 3);
        // Nested installs override and restore.
        let inner = self::pool(2);
        let (outer_before, inner_seen, outer_after) = pool.install(|| {
            let before = current_num_threads();
            let seen = inner.install(current_num_threads);
            (before, seen, current_num_threads())
        });
        assert_eq!((outer_before, inner_seen, outer_after), (3, 2, 3));
        // Zero means automatic.
        let auto = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(auto.current_num_threads(), default_num_threads());
        assert!(auto.current_num_threads() >= 1);
    }

    #[test]
    fn workers_inherit_the_cap_for_nested_calls() {
        // Each outer task reads the cap from whatever thread runs it; every
        // participant — caller or worker — must see the installed value.
        let caps: Vec<usize> = pool(4).install(|| {
            (0..16usize)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|_| {
                    std::thread::sleep(Duration::from_millis(5));
                    current_num_threads()
                })
                .collect()
        });
        assert!(caps.iter().all(|&c| c == 4), "caps seen: {caps:?}");
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        // Sleeping tasks do not need CPUs, so even a single-core host must
        // overlap them across the real worker threads: eight 40 ms sleeps on
        // four threads finish in two rounds, far under the 320 ms a
        // sequential fallback would take.
        let items: Vec<usize> = (0..8).collect();
        let start = Instant::now();
        let ids: Vec<std::thread::ThreadId> = pool(4).install(|| {
            items
                .par_iter()
                .map(|_| {
                    std::thread::sleep(Duration::from_millis(40));
                    std::thread::current().id()
                })
                .collect()
        });
        let elapsed = start.elapsed();
        let distinct: HashSet<_> = ids.iter().collect();
        assert!(distinct.len() >= 2, "expected worker participation");
        assert!(
            elapsed < Duration::from_millis(280),
            "eight 40ms sleeps on 4 threads took {elapsed:?} — not parallel"
        );
    }

    #[test]
    fn nested_parallelism_terminates_and_preserves_order() {
        let grids: Vec<Vec<u64>> = pool(4).install(|| {
            (0..6u64)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|&row| {
                    (0..5u64)
                        .collect::<Vec<_>>()
                        .par_iter()
                        .map(|&col| row * 10 + col)
                        .collect()
                })
                .collect()
        });
        for (row, grid) in grids.iter().enumerate() {
            let expected: Vec<u64> = (0..5).map(|col| row as u64 * 10 + col).collect();
            assert_eq!(grid, &expected);
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..64usize)
                    .collect::<Vec<_>>()
                    .par_iter()
                    .map(|&i| {
                        if i == 13 {
                            panic!("boom");
                        }
                        i
                    })
                    .collect::<Vec<_>>()
            })
        });
        assert!(result.is_err(), "the parallel panic must reach the caller");
        // The pool stays usable afterwards.
        let sum: Vec<usize> = pool(4).install(|| {
            (0..8usize)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|&i| i)
                .collect()
        });
        assert_eq!(sum, (0..8).collect::<Vec<_>>());
    }
}
