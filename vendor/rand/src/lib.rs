//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (SplitMix64 core —
//! statistically fine for workload generation, not cryptographic) together
//! with the [`Rng`]/[`SeedableRng`] traits and `gen_range` over the integer
//! and float range types the workspace samples from. Determinism per seed is
//! the property the test-suite relies on.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// User-facing random value generation.
pub trait Rng {
    /// Draws the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SampleRange, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `u64` in `[0, bound)` via rejection sampling (unbiased).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            if bound.is_power_of_two() {
                return self.next() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let raw = self.next();
                if raw < zone {
                    return raw % bound;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        start + rng.next_f64() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=50);
            assert!((5..=50).contains(&v));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
        }
    }

    #[test]
    fn full_band_is_reached() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<u64> = (0..2000).map(|_| rng.gen_range(0u64..=9)).collect();
        for target in 0..=9 {
            assert!(draws.contains(&target), "{target} never drawn");
        }
    }
}
