//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group/bench-function API surface the workspace's bench
//! targets register, with a deliberately small measurement loop (a short
//! warm-up plus a fixed number of timed iterations, median reported). It has
//! none of criterion's statistics; it exists so `cargo bench` produces
//! comparable wall-clock numbers offline and so the bench targets compile
//! and run in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, which criterion also provides.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id holding only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            rendered: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { rendered: name }
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration measurement driver passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over a short warm-up plus measured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let iterations = 5usize;
        for _ in 0..iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(group: Option<&str>, id: &str, bencher: &mut Bencher, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let median = bencher.median();
    match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let rate = n as f64 / median.as_secs_f64();
            println!("bench {label:<50} median {median:>12?}  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let rate = n as f64 / median.as_secs_f64();
            println!("bench {label:<50} median {median:>12?}  ({rate:.0} B/s)");
        }
        _ => println!("bench {label:<50} median {median:>12?}"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the vendored
    /// harness always runs its fixed short loop).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Registers and immediately runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(
            Some(&self.name),
            &id.rendered,
            &mut bencher,
            self.throughput,
        );
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(
            Some(&self.name),
            &id.rendered,
            &mut bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(None, &id.rendered, &mut bencher, None);
        self
    }
}

/// Collects bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
///
/// When cargo's test driver invokes bench binaries (`cargo test --benches`)
/// it passes `--test`; like real criterion, the harness then only checks
/// that it can start and runs no measurements.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let test_mode = std::env::args().any(|arg| arg == "--test");
            if test_mode {
                return;
            }
            $($group();)+
        }
    };
}
