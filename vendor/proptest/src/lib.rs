//! Offline stand-in for the `proptest` crate.
//!
//! Provides the slice of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros. Cases are drawn from a deterministic per-test RNG
//! (seeded from the test name), so failures are reproducible; there is no
//! shrinking — the failing inputs are printed instead.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Yields `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length ranges accepted by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for vectors with element strategy `S` and length drawn
    /// from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution support used by the `proptest!` macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// The underlying generator (public for the strategy impls).
        pub rng: StdRng,
    }

    impl TestRng {
        /// Creates the RNG for a named test, seeded from the test name so
        /// every run draws the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(hash),
            }
        }
    }

    /// Why a drawn case did not count as a pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the case; draw another.
        Reject,
        /// `prop_assert!`-style failure with a rendered message.
        Fail(String),
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Alias of the crate root, mirroring proptest's prelude.

        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property-test functions. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that draws `cases` accepted inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "proptest: too many prop_assume! rejections in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut rng);)+
                let case_desc = || {
                    let mut desc = String::new();
                    $(desc.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    desc
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(message)) => panic!(
                        "proptest case {} of {} failed: {}\ninputs:\n{}",
                        accepted + 1,
                        config.cases,
                        message,
                        case_desc()
                    ),
                }
            }
        }
        $crate::__proptest_impl! { $config; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
