//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of serde that the workspace actually uses: the
//! `Serialize`/`Deserialize` traits (routed through a self-describing
//! [`Value`] tree rather than serde's visitor machinery) and the two derive
//! macros, re-exported from the companion `serde_derive` proc-macro crate.
//!
//! The vendored `serde_json` crate renders [`Value`] trees to JSON text and
//! parses them back, which is all the workspace needs (round-tripping
//! configuration and result types).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value, the interchange format between
/// `Serialize`, `Deserialize` and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only produced for negative numbers).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("out of range")),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("out of range")),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::I64(*self as i64) } else { Value::U64(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("out of range")),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("out of range")),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::msg("expected float")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers in this vendored stack are u64-backed; larger values
        // (rare — nanosecond counters) fall back to a decimal string.
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as u128),
            Value::I64(n) => u128::try_from(*n).map_err(|_| Error::msg("negative u128")),
            Value::Str(s) => s.parse().map_err(|_| Error::msg("invalid u128 string")),
            _ => Err(Error::msg("expected u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) if n < 0 => Value::I64(n),
            Ok(n) => Value::U64(n as u64),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as i128),
            Value::I64(n) => Ok(*n as i128),
            Value::Str(s) => s.parse().map_err(|_| Error::msg("invalid i128 string")),
            _ => Err(Error::msg("expected i128")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($($t::from_value(
                        items.get($n).ok_or_else(|| Error::msg("tuple too short"))?
                    )?,)+)),
                    _ => Err(Error::msg("expected sequence for tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
