//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree to JSON text and parses JSON text back. Supports
//! exactly the JSON subset the workspace round-trips (objects, arrays,
//! strings, numbers, booleans, null).

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let rendered = format!("{f}");
        // Keep a float marker so the value parses back as a float.
        if rendered.contains('.') || rendered.contains('e') || rendered.contains('E') {
            out.push_str(&rendered);
        } else {
            out.push_str(&rendered);
            out.push_str(".0");
        }
    } else {
        // JSON has no Infinity/NaN; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg("invalid integer"))
        }
    }

    /// Parses the four hex digits of a `\u` escape starting at `start`.
    fn parse_hex4(&self, start: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate escape must
                                // follow; combine them into one code point.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::msg("unpaired surrogate in \\u escape"));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate in \\u escape"));
                                }
                                self.pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u64, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Valid JSON produced by encoders that \u-escape non-BMP characters.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        // Raw (unescaped) non-BMP characters also pass through.
        assert_eq!(from_str::<String>("\"\u{1F600}\"").unwrap(), "\u{1F600}");
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dx""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }

    #[test]
    fn out_of_range_integers_error_instead_of_saturating() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u64>("3.0").is_err());
    }

    #[test]
    fn float_precision_roundtrips() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-12, 123456789.123456] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(f, back);
        }
    }
}
